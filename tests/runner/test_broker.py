"""Protocol-level tests of :class:`repro.runner.broker.JobBroker`.

The model-based state machine drives the broker API in arbitrary
interleavings — submit, lease, heartbeat, complete (valid, corrupt and
stale), fail, expire, clock jumps — and checks the protocol's three
safety/liveness contracts after every step:

1. **never lose a spec** — every submitted key is always in exactly one
   of pending/leased/done/quarantined;
2. **never double-publish** — a key reaches ``done`` at most once and
   never leaves it;
3. **always converge** — after the random walk, a simple drain loop
   finishes every handle in bounded steps.

A manual clock stands in for time, so lease expiry and retry backoff
are exercised deterministically.
"""

import json

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.runner.broker import (
    DONE,
    LEASED,
    PENDING,
    QUARANTINED,
    JobBroker,
    PoisonSpecError,
    payload_digest,
)
from repro.runner.serialize import result_to_dict
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import ResultStore
from repro.sim.config import PrefetcherConfig

TINY = ExperimentScale(refs_per_core=400, warmup_refs=200, window_refs=200)

#: A pool of distinct specs for the machine to submit from.
SPECS = [
    ExperimentSpec.build(workload, config, scale=TINY)
    for workload in ["Qry1", "Apache", "DB2"]
    for config in [PrefetcherConfig.none(), PrefetcherConfig.virtualized(8)]
]

#: One real serialized result, reused as every publish payload — the
#: broker verifies digests and schema, not physics.
PAYLOAD = result_to_dict(SPECS[0].execute())
DIGEST = payload_digest(PAYLOAD)

WORKERS = ["w0", "w1", "w2"]


class BrokerProtocol(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.now = 0.0
        self.broker = JobBroker(
            max_attempts=3,
            lease_timeout=10.0,
            retry_backoff=1.0,
            clock=lambda: self.now,
        )
        self.handles = []
        self.submitted = set()          # unique keys ever submitted
        self.live = {}                  # token -> (key, worker) leases held
        self.retired = []               # tokens that were consumed/expired
        self.done_keys = set()          # keys we saw published

    # ----------------------------------------------------------- helpers

    def _retire(self, token):
        self.live.pop(token, None)
        self.retired.append(token)

    def _expire_model(self):
        """Mirror broker.expire: drop every lease past its deadline."""
        for token in list(self.live):
            job = self.broker._job_for_token(token)
            if job is None or job.deadline <= self.now:
                self._retire(token)

    # ------------------------------------------------------------- rules

    @rule(idx=st.integers(min_value=0, max_value=len(SPECS) - 1),
          count=st.integers(min_value=1, max_value=len(SPECS)))
    def submit(self, idx, count):
        specs = [SPECS[(idx + i) % len(SPECS)] for i in range(count)]
        handle = self.broker.submit(specs)
        assert len(handle.keys) == len({s.key for s in specs})
        self.handles.append(handle)
        self.submitted.update(handle.keys)

    @rule(worker=st.sampled_from(WORKERS))
    def lease(self, worker):
        job = self.broker.lease(worker, now=self.now)
        if job is None:
            return
        assert job.key in self.submitted
        assert job.key not in self.done_keys, "leased an already-done key"
        assert job.token not in self.live and job.token not in self.retired
        assert job.deadline == pytest.approx(self.now + 10.0)
        self.live[job.token] = (job.key, worker)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def heartbeat(self, data):
        token = data.draw(st.sampled_from(sorted(self.live)))
        assert self.broker.heartbeat(token, now=self.now)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def complete_ok(self, data):
        token = data.draw(st.sampled_from(sorted(self.live)))
        key, _ = self.live[token]
        outcome = self.broker.complete(token, PAYLOAD, DIGEST, now=self.now)
        assert outcome == "published"
        assert key not in self.done_keys, "double publish"
        self.done_keys.add(key)
        self._retire(token)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def complete_corrupt(self, data):
        """A digest mismatch is a failed attempt, never a result."""
        token = data.draw(st.sampled_from(sorted(self.live)))
        key, _ = self.live[token]
        outcome = self.broker.complete(
            token, PAYLOAD, "0" * 64, now=self.now
        )
        assert outcome == "corrupt"
        assert key not in self.done_keys
        self._retire(token)

    @precondition(lambda self: self.retired)
    @rule(data=st.data())
    def complete_stale(self, data):
        """A consumed/expired token can never publish."""
        before = self.broker.counts()
        token = data.draw(st.sampled_from(self.retired))
        outcome = self.broker.complete(token, PAYLOAD, DIGEST, now=self.now)
        assert outcome == "stale"
        assert self.broker.counts() == before

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def fail(self, data):
        token = data.draw(st.sampled_from(sorted(self.live)))
        outcome = self.broker.fail(token, "synthetic failure", now=self.now)
        assert outcome in ("requeued", "quarantined")
        self._retire(token)

    @rule(worker=st.sampled_from(WORKERS))
    def disconnect(self, worker):
        """A vanished remote host: every lease it held re-pends at once
        (the coordinator channel calls ``release_worker`` on EOF)."""
        expected = {
            key for token, (key, owner) in self.live.items()
            if owner == worker
            and self.broker._job_for_token(token) is not None
        }
        released = self.broker.release_worker(worker)
        assert set(released) == expected
        for token, (_, owner) in list(self.live.items()):
            if owner == worker:
                self._retire(token)

    @rule(step=st.floats(min_value=0.5, max_value=30.0))
    def tick_and_expire(self, step):
        self.now += step
        expired = self.broker.expire(now=self.now)
        for key in expired:
            assert key not in self.done_keys
        self._expire_model()

    # -------------------------------------------------------- invariants

    @invariant()
    def no_spec_lost(self):
        counts = self.broker.counts()
        assert sum(counts.values()) == len(self.submitted)

    @invariant()
    def done_is_sticky(self):
        counts = self.broker.counts()
        assert counts[DONE] == len(self.done_keys)
        for key in self.done_keys:
            assert self.broker.result(key) is not None

    @invariant()
    def publishes_are_unique(self):
        assert self.broker.stats()["published"] == len(self.done_keys)

    @invariant()
    def quarantine_is_bounded(self):
        for key, errors in self.broker.quarantined().items():
            assert len(errors) == self.broker.max_attempts
            assert key not in self.done_keys

    @invariant()
    def states_are_legal(self):
        for state in self.broker.counts():
            assert state in (PENDING, LEASED, DONE, QUARANTINED)

    # ------------------------------------------------------- convergence

    def teardown(self):
        budget = 4 * self.broker.max_attempts * (len(self.submitted) + 1)
        while self.handles and not all(
            self.broker.done(h) for h in self.handles
        ):
            assert budget > 0, "broker failed to converge"
            budget -= 1
            self.now += 100.0
            self.broker.expire(now=self.now)
            job = self.broker.lease("finisher", now=self.now)
            if job is not None:
                self.broker.complete(job.token, PAYLOAD, DIGEST, now=self.now)
        for handle in self.handles:
            try:
                results = self.broker.gather(handle)
            except PoisonSpecError as err:
                assert set(err.quarantined) <= set(handle.keys)
                assert set(err.quarantined).isdisjoint(err.results)
            else:
                assert len(results) == len(handle.keys)


TestBrokerProtocol = BrokerProtocol.TestCase
TestBrokerProtocol.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


# --------------------------------------------------------------- durability


class TestBrokerDurability:
    def test_state_survives_restart(self, tmp_path):
        """Pending work, attempts and quarantine outlive the process; done
        results re-pend only if the store lost them."""
        store = ResultStore(tmp_path / "store")
        state = tmp_path / "queue.json"
        clock = {"now": 0.0}
        broker = JobBroker(
            store=store, max_attempts=2, lease_timeout=5.0,
            clock=lambda: clock["now"], state_path=state,
        )
        handle = broker.submit(SPECS[:4])

        # Publish one, fail one once, quarantine one, leave one pending.
        done_key, failed_once, poison, _ = handle.keys
        lease = broker.lease("w0", only={done_key})
        broker.complete(lease.token, PAYLOAD, DIGEST)
        lease = broker.lease("w0", only={failed_once})
        broker.fail(lease.token, "transient")
        lease = broker.lease("w0", only={poison})
        broker.fail(lease.token, "boom")
        clock["now"] += 1.0  # past the retry backoff
        lease = broker.lease("w0", only={poison})
        broker.fail(lease.token, "boom again")
        assert broker.counts()[QUARANTINED] == 1

        reborn = JobBroker(
            store=store, max_attempts=2, lease_timeout=5.0,
            clock=lambda: clock["now"], state_path=state,
        )
        counts = reborn.counts()
        assert counts == {PENDING: 2, LEASED: 0, DONE: 1, QUARANTINED: 1}
        assert set(reborn.quarantined()) == {poison}
        restored = next(
            j for k, j in reborn._jobs.items() if k == failed_once
        )
        assert restored.attempts == 1  # retry budget carried over

        # The resumed queue drains to the same terminal picture.
        clock["now"] += 100.0
        while not reborn.done(handle):
            job = reborn.lease("w1")
            assert job is not None
            reborn.complete(job.token, PAYLOAD, DIGEST)
        with pytest.raises(PoisonSpecError) as excinfo:
            reborn.gather(handle)
        assert set(excinfo.value.quarantined) == {poison}
        assert len(excinfo.value.results) == 3

    def test_partition_leases_repend_on_restart(self, tmp_path):
        """Leases held by remote hosts when the coordinator snapshots are
        re-pended in the reborn broker — a partition plus a coordinator
        restart loses no spec, and the stale tokens can never publish."""
        store = ResultStore(tmp_path / "store")
        state = tmp_path / "queue.json"
        broker = JobBroker(store=store, lease_timeout=30.0, state_path=state)
        handle = broker.submit(SPECS[:3])
        held = [broker.lease(f"remote:h{i}:700{i}") for i in range(2)]
        assert all(held)
        assert broker.counts()[LEASED] == 2

        reborn = JobBroker(
            store=store, lease_timeout=30.0, state_path=state
        )
        assert reborn.counts() == {
            PENDING: 3, LEASED: 0, DONE: 0, QUARANTINED: 0
        }
        # Immediately leasable by a surviving host, no expiry wait.
        job = reborn.lease("remote:h9:7009")
        assert job is not None
        # The vanished hosts' tokens are stale against the reborn broker.
        for lease in held:
            assert reborn.complete(
                lease.token, PAYLOAD, DIGEST
            ) == "stale"
        reborn.complete(job.token, PAYLOAD, DIGEST)
        while not reborn.done(handle):
            job = reborn.lease("remote:h9:7009")
            assert job is not None
            reborn.complete(job.token, PAYLOAD, DIGEST)
        assert len(reborn.gather(handle)) == 3

    def test_done_repends_when_store_lost_result(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        state = tmp_path / "queue.json"
        broker = JobBroker(store=store, state_path=state)
        broker.submit(SPECS[:1])
        lease = broker.lease("w0")
        broker.complete(lease.token, PAYLOAD, DIGEST)
        assert broker.counts()[DONE] == 1

        store.clear()
        reborn = JobBroker(store=store, state_path=state)
        assert reborn.counts() == {
            PENDING: 1, LEASED: 0, DONE: 0, QUARANTINED: 0
        }

    def test_corrupt_snapshot_is_ignored(self, tmp_path):
        state = tmp_path / "queue.json"
        state.write_text("{ not json")
        broker = JobBroker(state_path=state)
        assert broker.counts() == {
            PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0
        }

    def test_snapshot_is_valid_json(self, tmp_path):
        state = tmp_path / "queue.json"
        broker = JobBroker(state_path=state)
        broker.submit(SPECS[:3])
        snapshot = json.loads(state.read_text())
        assert snapshot["broker_state_schema"] == 1
        assert len(snapshot["jobs"]) == 3


# ------------------------------------------------------------- group affinity


class TestAffinity:
    def test_bound_groups_are_preferred(self):
        broker = JobBroker()
        broker.submit(SPECS)  # two specs per workload group
        first = broker.lease("w0")
        second = broker.lease("w1")
        assert first.group != second.group
        # w0's next lease sticks to its bound group.
        again = broker.lease("w0")
        assert again.group == first.group

    def test_stealing_only_when_nothing_else_ready(self):
        broker = JobBroker()
        broker.submit(SPECS[:2])  # one group, two specs
        first = broker.lease("w0")
        stolen = broker.lease("w1")  # nothing unbound left: steal
        assert stolen is not None
        assert stolen.group == first.group

    def test_release_worker_frees_bindings_and_leases(self):
        clock = {"now": 0.0}
        broker = JobBroker(lease_timeout=5.0, clock=lambda: clock["now"])
        broker.submit(SPECS[:2])
        lease = broker.lease("w0")
        keys = broker.release_worker("w0")
        assert keys == [lease.key]
        assert broker.counts()[LEASED] == 0
        # The group is unbound again: a new worker binds it first-class.
        fresh = broker.lease("w1")
        assert fresh is not None and fresh.group == lease.group
