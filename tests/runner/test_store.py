"""The persistent result store: round-trips, versioning, atomicity."""

import json

import pytest

from repro.runner.serialize import canonical_result_json, result_to_dict
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import STORE_SCHEMA, ResultStore, ShardedResultStore
from repro.sim.config import PrefetcherConfig
from repro.sim.metrics import SimResult

SMALL = ExperimentScale(refs_per_core=800, warmup_refs=400, window_refs=200)


@pytest.fixture
def spec():
    return ExperimentSpec.build("Qry1", PrefetcherConfig.none(), scale=SMALL)


@pytest.fixture
def result():
    return SimResult(
        "Qry1", "NoPF", 4, 800,
        covered=10, uncovered=30, l2_requests=123,
        instructions=3200, elapsed_cycles=1234.5,
        window_ipcs=[1.0, 2.5], extra={"note": 1.0},
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_miss_then_hit(self, store, spec, result):
        assert store.get(spec) is None
        assert spec not in store
        store.put(spec, result)
        assert spec in store
        loaded = store.get(spec)
        assert loaded == result
        assert canonical_result_json(loaded) == canonical_result_json(result)

    def test_sharded_layout(self, store, spec, result):
        path = store.put(spec, result)
        assert path == store.path_for(spec.key)
        assert path.parent.name == spec.key[:2]
        assert list(store.keys()) == [spec.key]
        assert len(store) == 1

    def test_envelope_records_spec_and_schema(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        assert envelope["store_schema"] == STORE_SCHEMA
        assert envelope["key"] == spec.key
        assert ExperimentSpec.from_dict(envelope["spec"]) == spec
        assert envelope["result"] == result_to_dict(result)

    def test_no_temp_files_left_behind(self, store, spec, result):
        store.put(spec, result)
        leftovers = [p for p in store.root.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        path.write_text("{not json")
        assert store.get(spec) is None

    def test_foreign_schema_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["store_schema"] = STORE_SCHEMA + 1
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None

    def test_key_mismatch_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["key"] = "0" * 64
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None

    def test_result_schema_drift_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["result"].pop("covered")
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None

    def test_missing_root_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nope")
        assert len(store) == 0
        assert list(store.keys()) == []
        assert store.clear() == 0

    def test_truncated_entry_is_quarantined_then_healed(
        self, store, spec, result
    ):
        """A torn write (killed writer, disk rot) must not shadow its key
        forever: the unparseable file is moved aside as ``*.corrupt`` and
        the next ``put`` restores a clean, readable entry."""
        path = store.put(spec, result)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # torn mid-write

        assert store.get(spec) is None
        assert not path.exists()
        quarantined = path.with_suffix(".json.corrupt")
        assert quarantined.is_file()
        assert quarantined.read_text() == full[: len(full) // 2]

        store.put(spec, result)
        assert store.get(spec) == result
        assert quarantined.is_file()  # evidence is preserved

    def test_quarantine_only_hits_unparseable_files(self, store, spec, result):
        """Parseable-but-wrong entries (foreign schema, key mismatch) are
        plain misses — only JSON-level corruption is quarantined."""
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["store_schema"] = STORE_SCHEMA + 1
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None
        assert path.exists()
        assert not path.with_suffix(".json.corrupt").exists()

    def test_load_or_compute_recovers_from_corruption(self, store, spec, result):
        path = store.put(spec, result)
        path.write_text("")  # zero-length file: crashed before first byte
        recovered = store.load_or_compute(spec, compute=lambda: result)
        assert recovered == result
        assert store.get(spec) == result


class TestLoadOrCompute:
    def test_computes_once_then_loads(self, store, spec, result):
        calls = []

        def compute():
            calls.append(1)
            return result

        first = store.load_or_compute(spec, compute=compute)
        second = store.load_or_compute(spec, compute=compute)
        assert len(calls) == 1
        assert first == result and second == result

    def test_clear_forces_recompute(self, store, spec, result):
        calls = []

        def compute():
            calls.append(1)
            return result

        store.load_or_compute(spec, compute=compute)
        assert store.clear() == 1
        store.load_or_compute(spec, compute=compute)
        assert len(calls) == 2


class TestShardedStore:
    SPECS = [
        ExperimentSpec.build(workload, config, scale=SMALL)
        for workload in ["Qry1", "Apache", "DB2", "Zeus"]
        for config in [PrefetcherConfig.none(), PrefetcherConfig.virtualized(8)]
    ]

    @pytest.fixture
    def sharded(self, tmp_path):
        return ShardedResultStore([tmp_path / "a", tmp_path / "b", tmp_path / "c"])

    def test_requires_a_root(self):
        with pytest.raises(ValueError):
            ShardedResultStore([])

    def test_routing_is_deterministic(self, sharded):
        for spec in self.SPECS:
            assert sharded.shard_for(spec.key) is sharded.shard_for(spec.key)

    def test_round_trip_across_shards(self, sharded, result):
        for spec in self.SPECS:
            assert sharded.get(spec) is None
            sharded.put(spec, result)
            assert spec in sharded
            assert sharded.get(spec) == result
        assert len(sharded) == len(self.SPECS)
        assert sorted(sharded.keys()) == sorted(s.key for s in self.SPECS)
        # Entries live in the routed shard and nowhere else.
        for spec in self.SPECS:
            home = sharded.shard_for(spec.key)
            assert spec in home
            for shard in sharded.shards:
                if shard is not home:
                    assert spec not in shard

    def test_clear_sweeps_every_shard(self, sharded, result):
        for spec in self.SPECS:
            sharded.put(spec, result)
        assert sharded.clear() == len(self.SPECS)
        assert len(sharded) == 0

    def test_load_or_compute_routes(self, sharded, result):
        spec = self.SPECS[0]
        calls = []

        def compute():
            calls.append(1)
            return result

        assert sharded.load_or_compute(spec, compute=compute) == result
        assert sharded.load_or_compute(spec, compute=compute) == result
        assert len(calls) == 1
