"""The persistent result store: round-trips, versioning, atomicity."""

import json

import pytest

from repro.runner.serialize import canonical_result_json, result_to_dict
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import STORE_SCHEMA, ResultStore
from repro.sim.config import PrefetcherConfig
from repro.sim.metrics import SimResult

SMALL = ExperimentScale(refs_per_core=800, warmup_refs=400, window_refs=200)


@pytest.fixture
def spec():
    return ExperimentSpec.build("Qry1", PrefetcherConfig.none(), scale=SMALL)


@pytest.fixture
def result():
    return SimResult(
        "Qry1", "NoPF", 4, 800,
        covered=10, uncovered=30, l2_requests=123,
        instructions=3200, elapsed_cycles=1234.5,
        window_ipcs=[1.0, 2.5], extra={"note": 1.0},
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_miss_then_hit(self, store, spec, result):
        assert store.get(spec) is None
        assert spec not in store
        store.put(spec, result)
        assert spec in store
        loaded = store.get(spec)
        assert loaded == result
        assert canonical_result_json(loaded) == canonical_result_json(result)

    def test_sharded_layout(self, store, spec, result):
        path = store.put(spec, result)
        assert path == store.path_for(spec.key)
        assert path.parent.name == spec.key[:2]
        assert list(store.keys()) == [spec.key]
        assert len(store) == 1

    def test_envelope_records_spec_and_schema(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        assert envelope["store_schema"] == STORE_SCHEMA
        assert envelope["key"] == spec.key
        assert ExperimentSpec.from_dict(envelope["spec"]) == spec
        assert envelope["result"] == result_to_dict(result)

    def test_no_temp_files_left_behind(self, store, spec, result):
        store.put(spec, result)
        leftovers = [p for p in store.root.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        path.write_text("{not json")
        assert store.get(spec) is None

    def test_foreign_schema_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["store_schema"] = STORE_SCHEMA + 1
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None

    def test_key_mismatch_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["key"] = "0" * 64
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None

    def test_result_schema_drift_is_a_miss(self, store, spec, result):
        path = store.put(spec, result)
        envelope = json.loads(path.read_text())
        envelope["result"].pop("covered")
        path.write_text(json.dumps(envelope))
        assert store.get(spec) is None

    def test_missing_root_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "nope")
        assert len(store) == 0
        assert list(store.keys()) == []
        assert store.clear() == 0


class TestLoadOrCompute:
    def test_computes_once_then_loads(self, store, spec, result):
        calls = []

        def compute():
            calls.append(1)
            return result

        first = store.load_or_compute(spec, compute=compute)
        second = store.load_or_compute(spec, compute=compute)
        assert len(calls) == 1
        assert first == result and second == result

    def test_clear_forces_recompute(self, store, spec, result):
        calls = []

        def compute():
            calls.append(1)
            return result

        store.load_or_compute(spec, compute=compute)
        assert store.clear() == 1
        store.load_or_compute(spec, compute=compute)
        assert len(calls) == 2
