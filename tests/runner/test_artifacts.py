"""The persistent artifact store: format, trust model, lifecycle.

Pinned guarantees:

* warm-state and trace payloads round-trip bitwise — the decoded object
  compares equal to what was stored, exact types included;
* the store never trusts a damaged file: truncation, body corruption,
  header garbage and digest mismatch all quarantine (``*.corrupt``) and
  read as misses, so callers recompute;
* a stored trace serves any prefix request up to its length, rebuilt with
  annotations identical to regeneration; shorter stored prefixes miss;
* writes are atomic and last-writer-wins: concurrent writers on one key
  can interleave freely without a torn file ever being served;
* keys are stable content hashes (same inputs, same id across processes)
  and stripe deterministically across shard roots;
* ``gc`` bounds the store by age then size (oldest first) and always
  sweeps quarantined leftovers.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.prefetch.regions import SpatialRegionGeometry
from repro.runner import artifacts
from repro.runner.artifacts import ArtifactStore, trace_key_id, warm_key_id
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.registry import get_workload

PROFILE = get_workload("Qry1")
REGION = SpatialRegionGeometry()


def _warm_key(warmup=600, n_cores=4):
    # Shape-compatible with CMPSimulator._warm_key: (profile, seed,
    # region, warmup, *geometry).
    return (
        PROFILE, 3, REGION, warmup,
        n_cores, 64, 32768, 2, 32768, 2, 1 << 20, 16, True, 1,
    )


def _warm_payload():
    # Shape-compatible with CMPSimulator._snapshot_warm_state: per-cache
    # (tick, {set_index: (tags, stamps, meta)}), presence, fetch state.
    snaps = [
        (17, {0: ([1, 2], [5, 6], [0, 0]), 9: ([3], [7], [1])}),
        (2, {}),
    ]
    presence = {4096: 3, 8192: 1}
    return (snaps, presence, [64, 128], [0, 1])


def _trace(n=400, core=0, seed=7):
    return WorkloadGenerator(
        PROFILE, core=core, seed=seed, region=REGION
    ).compile_trace(n)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path)


class TestRoundTrip:
    def test_warm_payload_bitwise(self, store):
        key = _warm_key()
        payload = _warm_payload()
        store.put_warm_state(key, payload)
        restored = store.get_warm_state(key)
        assert restored == payload
        # Exact container types, not just equal values: the simulator
        # restore path indexes these structures directly.
        snaps, presence, last_iblock, nextline = restored
        assert isinstance(snaps[0], tuple)
        assert isinstance(snaps[0][1], dict)
        assert all(isinstance(k, int) for k in presence)

    def test_trace_bitwise_and_prefixes(self, store):
        records = _trace(400)
        store.put_trace(PROFILE, 0, 7, REGION, records)
        assert store.get_trace(PROFILE, 0, 7, REGION, 400) == records
        assert store.get_trace(PROFILE, 0, 7, REGION, 100)[:100] == records[:100]
        # Longer than stored: a miss, never a silent short read.
        assert store.get_trace(PROFILE, 0, 7, REGION, 401) is None

    def test_put_trace_keeps_longest_prefix(self, store):
        long = _trace(500)
        store.put_trace(PROFILE, 0, 7, REGION, long)
        # A shorter write is a no-op, not a truncation.
        assert store.put_trace(PROFILE, 0, 7, REGION, long[:100]) is None
        assert store.get_trace(PROFILE, 0, 7, REGION, 500) == long

    def test_distinct_keys_do_not_collide(self, store):
        store.put_trace(PROFILE, 0, 7, REGION, _trace(50, core=0))
        store.put_trace(PROFILE, 1, 7, REGION, _trace(50, core=1))
        assert (
            store.get_trace(PROFILE, 0, 7, REGION, 50)
            != store.get_trace(PROFILE, 1, 7, REGION, 50)
        )


class TestKeys:
    def test_key_ids_are_stable_content_hashes(self):
        assert warm_key_id(_warm_key()) == warm_key_id(_warm_key())
        assert warm_key_id(_warm_key()) != warm_key_id(_warm_key(warmup=700))
        assert (
            trace_key_id(PROFILE, 0, 7, REGION)
            == trace_key_id(PROFILE, 0, 7, REGION)
        )
        assert (
            trace_key_id(PROFILE, 0, 7, REGION)
            != trace_key_id(PROFILE, 1, 7, REGION)
        )

    def test_sharded_roots_route_deterministically(self, tmp_path):
        roots = [tmp_path / "a", tmp_path / "b", tmp_path / "c"]
        joined = os.pathsep.join(str(r) for r in roots)
        store = ArtifactStore(joined)
        for core in range(6):
            store.put_trace(PROFILE, core, 7, REGION, _trace(20, core=core))
        twin = ArtifactStore(joined)
        for core in range(6):
            assert twin.get_trace(PROFILE, core, 7, REGION, 20) is not None
        total = sum(
            1 for r in roots for _ in r.glob("artifacts/trace/??/*.bin")
        )
        assert total == 6


class TestQuarantine:
    def _trace_path(self, store):
        return store.path_for("trace", trace_key_id(PROFILE, 0, 7, REGION))

    def _stored(self, store, n=200):
        store.put_trace(PROFILE, 0, 7, REGION, _trace(n))
        return self._trace_path(store)

    def test_truncated_body_quarantined(self, store):
        path = self._stored(store)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        assert store.get_trace(PROFILE, 0, 7, REGION, 200) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        assert store.quarantined == 1

    def test_flipped_body_byte_quarantined(self, store):
        path = self._stored(store)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get_trace(PROFILE, 0, 7, REGION, 200) is None
        assert path.with_suffix(".corrupt").exists()

    def test_header_garbage_quarantined(self, store):
        path = self._stored(store)
        path.write_bytes(b"not json at all\n\x00\x01\x02")
        assert store.get_trace(PROFILE, 0, 7, REGION, 200) is None
        assert path.with_suffix(".corrupt").exists()

    def test_tampered_digest_quarantined(self, store):
        path = self._stored(store)
        data = path.read_bytes()
        newline = data.index(b"\n")
        header = json.loads(data[:newline])
        header["digest"] = "0" * 64
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + data[newline:]
        )
        assert store.get_trace(PROFILE, 0, 7, REGION, 200) is None
        assert path.with_suffix(".corrupt").exists()

    def test_recompute_after_quarantine_is_identical(self, store):
        records = _trace(200)
        path = self._stored(store, 200)
        path.write_bytes(b"garbage")
        assert store.get_trace(PROFILE, 0, 7, REGION, 200) is None
        # The caller's fallback: regenerate and re-persist.
        store.put_trace(PROFILE, 0, 7, REGION, _trace(200))
        assert store.get_trace(PROFILE, 0, 7, REGION, 200) == records

    def test_warm_corruption_is_a_miss(self, store):
        key = _warm_key()
        store.put_warm_state(key, _warm_payload())
        path = store.path_for("warm", warm_key_id(key))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get_warm_state(key) is None
        assert path.with_suffix(".corrupt").exists()

    def test_wrong_kind_is_a_plain_miss(self, store):
        # A warm artifact parked at a trace path (e.g. a foreign file)
        # is ignored, not quarantined: structurally healthy, just not ours.
        key = _warm_key()
        store.put_warm_state(key, _warm_payload())
        src = store.path_for("warm", warm_key_id(key))
        tkey = trace_key_id(PROFILE, 0, 7, REGION)
        dst = store.path_for("trace", tkey)
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)
        assert store.get_trace(PROFILE, 0, 7, REGION, 10) is None
        assert dst.exists()


def _racing_writer(root, n, barrier):
    store = ArtifactStore(root)
    records = _trace(n)
    barrier.wait()
    for _ in range(5):
        store._write(
            "trace", trace_key_id(PROFILE, 0, 7, REGION),
            artifacts._encode_trace(records),
            {"workload": PROFILE.name, "core": 0, "seed": 7, "records": n},
        )


class TestConcurrentWriters:
    def test_racing_writers_never_produce_a_torn_file(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        # Both writers encode the same 150-record stream and race raw
        # _write (bypassing put_trace's skip-if-longer) on one key.
        procs = [
            ctx.Process(target=_racing_writer, args=(str(tmp_path), 150, barrier))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        barrier.wait()
        reader = ArtifactStore(tmp_path)
        expected = _trace(150)
        seen = 0
        while any(p.is_alive() for p in procs) or seen == 0:
            got = reader.get_trace(PROFILE, 0, 7, REGION, 150)
            if got is not None:
                assert got == expected
                seen += 1
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert reader.quarantined == 0
        assert reader.get_trace(PROFILE, 0, 7, REGION, 150) == expected


class TestLifecycle:
    def test_stats_counts_disk_occupancy(self, store):
        store.put_warm_state(_warm_key(), _warm_payload())
        store.put_trace(PROFILE, 0, 7, REGION, _trace(50))
        stats = store.stats()
        assert stats["on_disk"]["warm"]["entries"] == 1
        assert stats["on_disk"]["trace"]["entries"] == 1
        assert stats["on_disk"]["trace"]["bytes"] > 0
        assert stats["writes"] == 2

    def test_stats_report_per_kind_corruption(self, store):
        """``repro artifacts stats`` can say *which* kind is rotting: the
        quarantine counters and on-disk ``*.corrupt`` tallies are broken
        out per kind, not lumped into one number."""
        store.put_warm_state(_warm_key(), _warm_payload())
        store.put_trace(PROFILE, 0, 7, REGION, _trace(50))
        warm_path = store.path_for("warm", warm_key_id(_warm_key()))
        warm_path.write_bytes(warm_path.read_bytes()[:10])
        assert store.get_warm_state(_warm_key()) is None  # quarantines
        stats = store.stats()
        assert store.quarantined_by_kind == {"warm": 1, "trace": 0}
        assert stats["quarantined_by_kind"] == {"warm": 1, "trace": 0}
        assert stats["on_disk"]["warm"]["corrupt"] == 1
        assert stats["on_disk"]["warm"]["corrupt_bytes"] > 0
        assert stats["on_disk"]["trace"]["corrupt"] == 0
        assert stats["on_disk"]["trace"]["entries"] == 1

    def test_raw_blob_round_trip_and_verification(self, store, tmp_path):
        """The transport-facing raw API: whole digest-stamped files move
        between stores, and ``verify=True`` rejects damaged or mismatched
        blobs before they reach the trusted tree."""
        store.put_warm_state(_warm_key(), _warm_payload())
        key_id = warm_key_id(_warm_key())
        blob = store.get_raw("warm", key_id)
        assert blob is not None

        twin = ArtifactStore(tmp_path / "twin")
        assert twin.put_raw("warm", key_id, blob, verify=True)
        assert twin.get_warm_state(_warm_key()) == _warm_payload()

        damaged = bytearray(blob)
        damaged[-1] ^= 0x01
        other = ArtifactStore(tmp_path / "other")
        assert not other.put_raw("warm", key_id, bytes(damaged), verify=True)
        assert not other.put_raw("warm", "0" * 16, blob, verify=True)  # wrong key
        assert not other.put_raw("nope", key_id, blob, verify=True)   # bad kind
        assert other.get_raw("warm", key_id) is None

    def test_gc_by_age_then_size(self, store):
        for core in range(4):
            path = store.put_trace(
                PROFILE, core, 7, REGION, _trace(100, core=core)
            )
            os.utime(path, (1000.0 * (core + 1), 1000.0 * (core + 1)))
        # Age bound: cores 0-1 (mtime 1000/2000) expire at now=10000 with
        # max_age 7500.
        out = store.gc(max_age_s=7_500.0, now=10_000.0)
        assert out["expired"] == 2
        survivors = list(store.entries())
        assert len(survivors) == 2
        # Size bound: evict oldest until one fits.
        keep = max(info.size for info in survivors)
        out = store.gc(max_bytes=keep, now=10_000.0)
        assert out["removed"] >= 1
        assert sum(info.size for info in store.entries()) <= keep

    def test_gc_sweeps_corrupt_files(self, store):
        path = store.put_trace(PROFILE, 0, 7, REGION, _trace(50))
        path.write_bytes(b"junk")
        assert store.get_trace(PROFILE, 0, 7, REGION, 50) is None
        out = store.gc()
        assert out["corrupt_swept"] == 1
        assert not list(store.roots[0].glob("trace/??/*.corrupt"))

    def test_clear_removes_everything(self, store):
        store.put_warm_state(_warm_key(), _warm_payload())
        store.put_trace(PROFILE, 0, 7, REGION, _trace(50))
        assert store.clear() == 2
        assert list(store.entries()) == []


class TestActivation:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        artifacts.reset()
        try:
            assert artifacts.active_store() is None
        finally:
            artifacts.reset()

    def test_env_resolution_and_configure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "via-env"))
        artifacts.reset()
        try:
            resolved = artifacts.active_store()
            assert resolved is not None
            assert resolved.roots[0].parent == tmp_path / "via-env"
            store = artifacts.configure(tmp_path / "via-flag")
            assert artifacts.active_store() is store
            # configure exports the env var so spawned workers inherit it.
            assert os.environ["REPRO_ARTIFACTS"] == str(tmp_path / "via-flag")
            assert artifacts.configure(None) is None
            assert "REPRO_ARTIFACTS" not in os.environ
            assert artifacts.active_store() is None
        finally:
            artifacts.reset()
