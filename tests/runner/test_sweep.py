"""SweepRunner: parallel determinism, cache merge, store interplay."""

from itertools import product

import pytest

from repro.runner.serialize import canonical_result_json
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import ResultStore
from repro.runner.sweep import SweepRunner
from repro.sim import experiment
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import clear_cache, run_experiment

TINY = ExperimentScale(refs_per_core=600, warmup_refs=300, window_refs=200)

#: All four paper prefetcher modes, mixed over two workloads.
MIXED_SPECS = [
    ExperimentSpec.build(workload, config, scale=TINY)
    for workload, config in product(
        ["Qry1", "Apache"],
        [
            PrefetcherConfig.none(),
            PrefetcherConfig.dedicated(16, 11),
            PrefetcherConfig.infinite(),
            PrefetcherConfig.virtualized(8),
        ],
    )
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDeterminismUnderParallelism:
    def test_parallel_matches_serial_run_experiment_byte_for_byte(self):
        serial = [
            run_experiment(
                spec.workload, spec.prefetcher, scale=spec.scale, use_cache=False
            )
            for spec in MIXED_SPECS
        ]
        clear_cache()
        parallel = SweepRunner(jobs=4).run(MIXED_SPECS)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert canonical_result_json(p) == canonical_result_json(s)

    def test_store_round_trip_preserves_equality(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        computed = SweepRunner(jobs=4, store=store).run(MIXED_SPECS)
        for spec, result in zip(MIXED_SPECS, computed):
            reloaded = store.get(spec)
            assert reloaded == result
            assert canonical_result_json(reloaded) == canonical_result_json(result)

    def test_results_aligned_with_input_order(self):
        results = SweepRunner(jobs=4).run(MIXED_SPECS)
        for spec, result in zip(MIXED_SPECS, results):
            assert result.workload == spec.workload
            assert result.config_label == spec.prefetcher.label


class TestCacheMerge:
    def test_sweep_warms_run_experiment(self):
        specs = MIXED_SPECS[:2]
        SweepRunner(jobs=2).run(specs)
        assert experiment.cache_size() == 2
        for spec in specs:
            cached = run_experiment(spec.workload, spec.prefetcher, scale=spec.scale)
            assert cached is experiment.cache_get(spec.key)

    def test_clear_cache_empties_store_path_results(self, tmp_path):
        """Satellite fix: results merged via the store path honor clear_cache."""
        store = ResultStore(tmp_path / "store")
        SweepRunner(jobs=1, store=store).run(MIXED_SPECS[:1])
        assert experiment.cache_size() == 1
        clear_cache()
        assert experiment.cache_size() == 0
        # And the store-backed run_experiment path repopulates the same cache.
        run_experiment(
            MIXED_SPECS[0].workload, MIXED_SPECS[0].prefetcher,
            scale=MIXED_SPECS[0].scale, store=store,
        )
        assert experiment.cache_size() == 1
        clear_cache()
        assert experiment.cache_size() == 0

    def test_duplicates_resolved_once(self):
        seen = []
        runner = SweepRunner(jobs=1, observer=lambda p: seen.append(p))
        spec = MIXED_SPECS[0]
        results = runner.run([spec, spec, spec])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        # One unique spec -> one simulation, one notification.
        assert [(p.done, p.total, p.source) for p in seen] == [(1, 1, "computed")]
        assert experiment.cache_size() == 1


class TestSources:
    def test_observer_reports_cache_store_computed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = MIXED_SPECS[0]

        sources = []
        runner = SweepRunner(
            jobs=1, store=store, observer=lambda p: sources.append(p.source)
        )
        runner.run([spec])            # cold: simulated
        clear_cache()
        runner.run([spec])            # warm store, cold cache: loaded
        runner.run([spec])            # warm cache
        assert sources == ["computed", "store", "cache"]

    def test_progress_counts_monotone(self):
        seen = []
        SweepRunner(jobs=2, observer=lambda p: seen.append((p.done, p.total))).run(
            MIXED_SPECS[:3]
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestWorkloadGrouping:
    """Warm-state reuse: chunks never straddle workloads, workers <= groups."""

    def test_group_specs_first_appearance_order(self):
        groups = SweepRunner._group_specs(MIXED_SPECS)
        assert list(groups) == ["Qry1", "Apache"]
        assert all(len(specs) == 4 for specs in groups.values())
        for workload, specs in groups.items():
            assert all(spec.workload == workload for spec in specs)

    def test_chunks_never_straddle_groups(self):
        runner = SweepRunner(jobs=3)
        groups = runner._group_specs(MIXED_SPECS)
        chunks = runner._chunks(groups, jobs=3)
        for chunk in chunks:
            assert len({spec.workload for spec in chunk}) == 1
        flattened = [spec for chunk in chunks for spec in chunk]
        assert [s.key for s in flattened] == [
            s.key for specs in groups.values() for s in specs
        ]

    def test_explicit_chunksize_respected_within_groups(self):
        runner = SweepRunner(jobs=2, chunksize=3)
        groups = runner._group_specs(MIXED_SPECS)
        chunks = runner._chunks(groups, jobs=2)
        # 4 specs per group at chunksize 3 -> [3, 1] per group.
        assert sorted(len(c) for c in chunks) == [1, 1, 3, 3]

    def test_parallel_grouped_run_matches_serial(self):
        serial = SweepRunner(jobs=1).run(MIXED_SPECS)
        clear_cache()
        parallel = SweepRunner(jobs=8).run(MIXED_SPECS)  # > 2 groups
        for s, p in zip(serial, parallel):
            assert canonical_result_json(p) == canonical_result_json(s)

    def test_preshare_compiles_multi_spec_groups_only(self):
        from repro.workloads.generator import TRACE_CACHE

        TRACE_CACHE.clear()
        misses0 = TRACE_CACHE.stats()["misses"]
        single = [ExperimentSpec.build("Zeus", PrefetcherConfig.none(), scale=TINY)]
        SweepRunner._preshare_traces(SweepRunner._group_specs(single))
        # One spec: skipped (the one worker compiles it just as fast).
        assert TRACE_CACHE.stats()["misses"] == misses0
        SweepRunner._preshare_traces(SweepRunner._group_specs(MIXED_SPECS))
        stats = TRACE_CACHE.stats()
        assert stats["misses"] == misses0 + 8  # 2 workloads x 4 cores
        assert stats["records"] >= 8 * (TINY.refs_per_core + TINY.warmup_refs)
        # Presharing again is pure cache hits.
        SweepRunner._preshare_traces(SweepRunner._group_specs(MIXED_SPECS))
        assert TRACE_CACHE.stats()["misses"] == misses0 + 8

    def test_preshare_disabled_by_env(self, monkeypatch):
        from repro.workloads.generator import TRACE_CACHE

        TRACE_CACHE.clear()
        misses0 = TRACE_CACHE.stats()["misses"]
        monkeypatch.setenv("REPRO_SHARE_TRACES", "0")
        SweepRunner._preshare_traces(SweepRunner._group_specs(MIXED_SPECS))
        assert TRACE_CACHE.stats()["misses"] == misses0


class TestTraceCacheStats:
    def test_stats_counters(self):
        from repro.workloads.generator import TraceCache
        from repro.workloads.registry import get_workload

        cache = TraceCache(max_records=1_000)
        profile = get_workload("Qry1")
        cache.get(profile, 0, 1, None, 400)
        cache.get(profile, 0, 1, None, 400)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["records"] >= 400
        # Force an eviction: a second stream pushes total past the bound.
        cache.get(profile, 1, 1, None, 700)
        assert cache.stats()["evictions"] >= 1


class TestSampledSweep:
    """Sampled specs flow through the runner like any other spec."""

    def test_parallel_sampled_sweep_matches_serial(self):
        from repro.sim.sampling import SamplingConfig

        sampling = SamplingConfig.smarts(
            period_refs=300, detail_refs=50, warm_refs=20, functional_refs=80
        )
        specs = [
            ExperimentSpec.build(w, c, scale=TINY, sampling=sampling)
            for w, c in product(
                ["Qry1", "Apache"],
                [PrefetcherConfig.none(), PrefetcherConfig.virtualized(8)],
            )
        ]
        serial = SweepRunner(jobs=1).run(specs)
        clear_cache()
        parallel = SweepRunner(jobs=4).run(specs)
        for s, p in zip(serial, parallel):
            assert s.is_sampled and p.is_sampled
            assert canonical_result_json(p) == canonical_result_json(s)
