"""SweepRunner: parallel determinism, cache merge, store interplay."""

from itertools import product

import pytest

from repro.runner.serialize import canonical_result_json
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import ResultStore
from repro.runner.sweep import SweepRunner
from repro.sim import experiment
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import clear_cache, run_experiment

TINY = ExperimentScale(refs_per_core=600, warmup_refs=300, window_refs=200)

#: All four paper prefetcher modes, mixed over two workloads.
MIXED_SPECS = [
    ExperimentSpec.build(workload, config, scale=TINY)
    for workload, config in product(
        ["Qry1", "Apache"],
        [
            PrefetcherConfig.none(),
            PrefetcherConfig.dedicated(16, 11),
            PrefetcherConfig.infinite(),
            PrefetcherConfig.virtualized(8),
        ],
    )
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDeterminismUnderParallelism:
    def test_parallel_matches_serial_run_experiment_byte_for_byte(self):
        serial = [
            run_experiment(
                spec.workload, spec.prefetcher, scale=spec.scale, use_cache=False
            )
            for spec in MIXED_SPECS
        ]
        clear_cache()
        parallel = SweepRunner(jobs=4).run(MIXED_SPECS)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert canonical_result_json(p) == canonical_result_json(s)

    def test_store_round_trip_preserves_equality(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        computed = SweepRunner(jobs=4, store=store).run(MIXED_SPECS)
        for spec, result in zip(MIXED_SPECS, computed):
            reloaded = store.get(spec)
            assert reloaded == result
            assert canonical_result_json(reloaded) == canonical_result_json(result)

    def test_results_aligned_with_input_order(self):
        results = SweepRunner(jobs=4).run(MIXED_SPECS)
        for spec, result in zip(MIXED_SPECS, results):
            assert result.workload == spec.workload
            assert result.config_label == spec.prefetcher.label


class TestCacheMerge:
    def test_sweep_warms_run_experiment(self):
        specs = MIXED_SPECS[:2]
        SweepRunner(jobs=2).run(specs)
        assert experiment.cache_size() == 2
        for spec in specs:
            cached = run_experiment(spec.workload, spec.prefetcher, scale=spec.scale)
            assert cached is experiment.cache_get(spec.key)

    def test_clear_cache_empties_store_path_results(self, tmp_path):
        """Satellite fix: results merged via the store path honor clear_cache."""
        store = ResultStore(tmp_path / "store")
        SweepRunner(jobs=1, store=store).run(MIXED_SPECS[:1])
        assert experiment.cache_size() == 1
        clear_cache()
        assert experiment.cache_size() == 0
        # And the store-backed run_experiment path repopulates the same cache.
        run_experiment(
            MIXED_SPECS[0].workload, MIXED_SPECS[0].prefetcher,
            scale=MIXED_SPECS[0].scale, store=store,
        )
        assert experiment.cache_size() == 1
        clear_cache()
        assert experiment.cache_size() == 0

    def test_duplicates_resolved_once(self):
        seen = []
        runner = SweepRunner(jobs=1, observer=lambda p: seen.append(p))
        spec = MIXED_SPECS[0]
        results = runner.run([spec, spec, spec])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        # One unique spec -> one simulation, one notification.
        assert [(p.done, p.total, p.source) for p in seen] == [(1, 1, "computed")]
        assert experiment.cache_size() == 1


class TestSources:
    def test_observer_reports_cache_store_computed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = MIXED_SPECS[0]

        sources = []
        runner = SweepRunner(
            jobs=1, store=store, observer=lambda p: sources.append(p.source)
        )
        runner.run([spec])            # cold: simulated
        clear_cache()
        runner.run([spec])            # warm store, cold cache: loaded
        runner.run([spec])            # warm cache
        assert sources == ["computed", "store", "cache"]

    def test_progress_counts_monotone(self):
        seen = []
        SweepRunner(jobs=2, observer=lambda p: seen.append((p.done, p.total))).run(
            MIXED_SPECS[:3]
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
