"""Fault-injection proof of the broker/worker fabric.

Every scenario injects a failure through :mod:`repro.runner.faults` and
asserts the protocol's contract: the sweep terminates, nothing is lost,
nothing is published twice, and the final results are byte-identical to
a serial no-fault run.
"""

from itertools import product

import pytest

from repro.runner import faults
from repro.runner.broker import PoisonSpecError
from repro.runner.serialize import canonical_result_json
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import ResultStore
from repro.runner.sweep import SweepRunner
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import clear_cache

TINY = ExperimentScale(refs_per_core=600, warmup_refs=300, window_refs=200)

SPECS = [
    ExperimentSpec.build(workload, config, scale=TINY)
    for workload, config in product(
        ["Qry1", "Apache"],
        [PrefetcherConfig.none(), PrefetcherConfig.virtualized(8)],
    )
]

#: Tag form the fault selectors can aim at (workload/config-label).
POISON_TAG = "Apache/PV8"
POISON_SPEC = next(
    s for s in SPECS
    if f"{s.workload}/{s.prefetcher.label}" == POISON_TAG
)


@pytest.fixture(autouse=True)
def _clean_slate():
    clear_cache()
    faults.install(None)
    yield
    faults.install(None)
    clear_cache()


@pytest.fixture()
def serial_goldens():
    """Canonical payloads of a serial, fault-free run (the reference)."""
    results = SweepRunner(jobs=1).run(SPECS)
    goldens = [canonical_result_json(r) for r in results]
    clear_cache()
    return goldens


def _plan(tmp_path, **kwargs):
    plan = faults.FaultPlan(tally_dir=str(tmp_path / "tally"), **kwargs)
    faults.install(plan)
    return plan


class TestWorkerCrash:
    def test_crash_mid_chunk_recovers_byte_identical(
        self, tmp_path, serial_goldens
    ):
        """A worker killed before publishing loses its lease, the spec is
        re-leased, and the sweep still matches the serial run exactly."""
        _plan(tmp_path, crash=(SPECS[0].key,))
        runner = SweepRunner(jobs=2, lease_timeout=2.0)
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        stats = runner.last_stats
        assert stats["expirations"] >= 1       # the dead worker's lease
        assert stats["retries"] >= 1           # the spec went around again
        assert stats["published"] == len(SPECS)  # and exactly once each

    def test_crash_under_inline_backend_is_retried(
        self, tmp_path, serial_goldens
    ):
        """The inline backend maps the crash to a retried failure."""
        _plan(tmp_path, crash=(SPECS[0].key,))
        runner = SweepRunner(jobs=1)
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        assert runner.last_stats["retries"] >= 1


class TestPoisonSpec:
    def test_poison_quarantined_rest_unaffected(
        self, tmp_path, serial_goldens
    ):
        """A spec that fails every attempt is quarantined after its bounded
        retries; every other spec completes byte-identically."""
        _plan(tmp_path, poison=(POISON_TAG,))
        runner = SweepRunner(jobs=2, lease_timeout=2.0, max_attempts=3)
        with pytest.raises(PoisonSpecError) as excinfo:
            runner.run(SPECS)
        err = excinfo.value
        assert set(err.quarantined) == {POISON_SPEC.key}
        assert len(err.quarantined[POISON_SPEC.key]) == 3  # one per attempt
        healthy = {
            spec.key: golden
            for spec, golden in zip(SPECS, serial_goldens)
            if spec.key != POISON_SPEC.key
        }
        assert set(err.results) == set(healthy)
        for key, result in err.results.items():
            assert canonical_result_json(result) == healthy[key]
        assert runner.last_stats["quarantined"] == 1

    def test_poison_does_not_poison_the_store(self, tmp_path, serial_goldens):
        """Healthy results are persisted even when a sibling is quarantined;
        a later no-fault run heals the store completely."""
        store = ResultStore(tmp_path / "store")
        _plan(tmp_path, poison=(POISON_TAG,))
        with pytest.raises(PoisonSpecError):
            SweepRunner(jobs=2, store=store, max_attempts=2).run(SPECS)
        assert len(store) == len(SPECS) - 1
        faults.install(None)
        clear_cache()
        results = SweepRunner(jobs=2, store=store).run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        assert len(store) == len(SPECS)


class TestCorruptPayload:
    def test_inflight_corruption_detected_and_recomputed(
        self, tmp_path, serial_goldens
    ):
        """A payload corrupted between digest and publish is rejected by
        the digest check and the spec recomputed — never served corrupt."""
        _plan(tmp_path, corrupt=(SPECS[1].key,))
        runner = SweepRunner(jobs=2, lease_timeout=2.0)
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        stats = runner.last_stats
        assert stats["corrupt_rejected"] >= 1
        assert stats["published"] == len(SPECS)

    def test_inline_backend_detects_corruption_too(
        self, tmp_path, serial_goldens
    ):
        _plan(tmp_path, corrupt=(SPECS[1].key,))
        runner = SweepRunner(jobs=1)
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        assert runner.last_stats["corrupt_rejected"] >= 1


class TestHeartbeatDelay:
    def test_partitioned_worker_loses_lease_no_double_publish(
        self, tmp_path, serial_goldens
    ):
        """A worker that stops heartbeating past lease expiry loses the
        spec; it is re-leased and completes; the late publish (if it
        arrives before teardown) is rejected as stale — the key is
        published exactly once either way."""
        _plan(tmp_path, delay=("Qry1/NoPF",), delay_s=1.2)
        runner = SweepRunner(jobs=2, lease_timeout=0.3)
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        stats = runner.last_stats
        assert stats["expirations"] >= 1
        assert stats["published"] == len(SPECS)


class TestEnvDrivenPlan:
    def test_plan_round_trips_through_env(self, tmp_path, monkeypatch):
        plan = faults.FaultPlan(
            crash=("aa",), poison=("Qry1/NoPF",), delay_s=2.5,
            tally_dir=str(tmp_path),
        )
        monkeypatch.setenv("REPRO_FAULTS", plan.to_env())
        assert faults.active_plan() == plan

    def test_env_plan_drives_a_sweep(self, tmp_path, monkeypatch, serial_goldens):
        plan = faults.FaultPlan(
            crash=(SPECS[2].key,), tally_dir=str(tmp_path / "tally")
        )
        monkeypatch.setenv("REPRO_FAULTS", plan.to_env())
        runner = SweepRunner(jobs=2, lease_timeout=2.0)
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == serial_goldens
        assert runner.last_stats["retries"] >= 1

    def test_no_plan_is_null(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.active_plan() is faults.NO_FAULTS
        assert faults.NO_FAULTS.is_null


class TestNetworkFaultKinds:
    """The remote transport's selectors: drop / garble / disconnect."""

    def test_round_trip_through_env(self, tmp_path, monkeypatch):
        plan = faults.FaultPlan(
            drop=("Qry1/NoPF",), garble=("ab",), disconnect=("Apache/PV8",),
            tally_dir=str(tmp_path),
        )
        assert not plan.is_null
        monkeypatch.setenv("REPRO_FAULTS", plan.to_env())
        assert faults.active_plan() == plan

    def test_hooks_fire_once_per_key(self, tmp_path):
        plan = _plan(
            tmp_path,
            drop=("Qry1/NoPF",), garble=("aa",), disconnect=("Apache/PV8",),
        )
        # Tag-aimed drop: first trip only.
        assert plan.should_drop("k1", "Qry1/NoPF")
        assert not plan.should_drop("k1", "Qry1/NoPF")
        assert plan.should_drop("k2", "Qry1/NoPF")  # a different key re-arms
        # Key-prefix-aimed garble.
        assert plan.should_garble("aa123", "x/y")
        assert not plan.should_garble("aa123", "x/y")
        assert not plan.should_garble("bb123", "x/y")  # selector mismatch
        # Disconnect, and kinds never cross-trip each other.
        assert plan.should_disconnect("k1", "Apache/PV8")
        assert not plan.should_disconnect("k1", "Apache/PV8")
        assert not plan.should_drop("zz", "Apache/PV8")

    def test_unknown_selector_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            faults.FaultPlan.from_dict({"dropp": ["x"]})
