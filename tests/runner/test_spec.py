"""Property tests for ExperimentSpec identity and SimResult serialization."""

import json
import random
from itertools import product

import pytest

from repro.runner.serialize import (
    ResultSchemaError,
    canonical_result_json,
    result_from_dict,
    result_to_dict,
)
from repro.runner.spec import SPEC_SCHEMA, ExperimentScale, ExperimentSpec
from repro.sim.config import EngineConfig, PrefetcherConfig
from repro.sim.metrics import SimResult
from repro.sim.sampling import SamplingConfig

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev image
    HAVE_HYPOTHESIS = False

SMALL = ExperimentScale(refs_per_core=800, warmup_refs=400, window_refs=200)


def _shuffled(mapping, seed):
    """The same mapping rebuilt with a different key insertion order."""
    rng = random.Random(seed)
    items = list(mapping.items())
    rng.shuffle(items)
    return {
        k: _shuffled(v, seed + 1) if isinstance(v, dict) else v
        for k, v in items
    }


class TestSpecIdentity:
    def test_key_is_stable_text(self):
        spec = ExperimentSpec.build("Qry1", PrefetcherConfig.none(), scale=SMALL)
        assert spec.key == spec.key
        assert len(spec.key) == 64
        int(spec.key, 16)  # hex digest

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_hash_independent_of_field_ordering(self, seed):
        spec = ExperimentSpec.build(
            "Oracle", PrefetcherConfig.virtualized(8), scale=SMALL,
            l2_size=2 * 1024**2, pv_aware=True, seed=7,
        )
        reordered = ExperimentSpec.from_dict(_shuffled(spec.to_dict(), seed))
        assert reordered == spec
        assert reordered.key == spec.key

    def test_json_round_trip(self):
        spec = ExperimentSpec.build(
            "Apache", PrefetcherConfig.dedicated(16, 11), scale=SMALL,
            l2_tag_latency=8, l2_data_latency=16,
        )
        back = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec and back.key == spec.key

    def test_schema_version_participates_in_hash(self):
        spec = ExperimentSpec.build("Qry1", PrefetcherConfig.none(), scale=SMALL)
        assert f'"schema":{SPEC_SCHEMA}' in spec.canonical_json()

    def test_foreign_schema_rejected(self):
        spec = ExperimentSpec.build("Qry1", PrefetcherConfig.none(), scale=SMALL)
        d = spec.to_dict()
        d["schema"] = SPEC_SCHEMA + 1
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict(d)

    def test_unknown_field_rejected(self):
        spec = ExperimentSpec.build("Qry1", PrefetcherConfig.none(), scale=SMALL)
        d = spec.to_dict()
        d["turbo"] = True
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict(d)

    def test_collision_free_across_spec_lattice(self):
        """Every point of a mixed design-space lattice gets a distinct key."""
        configs = [
            PrefetcherConfig.none(),
            PrefetcherConfig.infinite(),
            PrefetcherConfig.dedicated(16, 11),
            PrefetcherConfig.dedicated(1024, 11),
            PrefetcherConfig.virtualized(8),
            PrefetcherConfig.virtualized(16),
        ]
        scales = [SMALL, ExperimentScale(1600, 800, 400)]
        lattice = [
            ExperimentSpec.build(
                w, c, scale=s, l2_size=l2, pv_aware=pv, seed=seed
            )
            for w, c, s in product(["Qry1", "Zeus"], configs, scales)
            for l2 in (None, 2 * 1024**2)
            for pv in (False, True)
            for seed in (1, 2)
        ]
        keys = [spec.key for spec in lattice]
        assert len(set(keys)) == len(keys) == len(lattice)


class TestSamplingSpecs:
    """Spec identity and round-trip for the two-speed sampled scenarios."""

    SAMPLING = SamplingConfig.smarts(
        period_refs=400, detail_refs=60, warm_refs=30, functional_refs=100
    )

    def test_sampling_spec_round_trips(self):
        spec = ExperimentSpec.build(
            "Qry1", PrefetcherConfig.virtualized(8), scale=SMALL,
            sampling=self.SAMPLING,
        )
        back = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec and back.key == spec.key
        assert back.sampling == self.SAMPLING

    def test_sampling_variants_have_distinct_keys(self):
        variants = [
            None,
            SamplingConfig.disabled(),
            self.SAMPLING,
            SamplingConfig.smarts(
                period_refs=400, detail_refs=60, warm_refs=30,
                functional_refs=200,
            ),
            SamplingConfig.smarts(
                period_refs=400, detail_refs=60, warm_refs=30,
                functional_refs=100, shared_warm=False,
            ),
        ]
        keys = {
            ExperimentSpec.build(
                "Qry1", PrefetcherConfig.none(), scale=SMALL, sampling=v
            ).key
            for v in variants
        }
        assert len(keys) == len(variants)

    def test_ambient_default_applies_to_build_only(self):
        from repro.sim.sampling import set_default_sampling

        try:
            set_default_sampling(self.SAMPLING)
            built = ExperimentSpec.build(
                "Qry1", PrefetcherConfig.none(), scale=SMALL
            )
            assert built.sampling == self.SAMPLING
            direct = ExperimentSpec(
                workload="Qry1", prefetcher=PrefetcherConfig.none(), scale=SMALL
            )
            assert direct.sampling is None
        finally:
            set_default_sampling(None)
        assert ExperimentSpec.build(
            "Qry1", PrefetcherConfig.none(), scale=SMALL
        ).sampling is None

    def test_sampled_execute_produces_sampled_result(self):
        spec = ExperimentSpec.build(
            "Qry1", PrefetcherConfig.none(), scale=SMALL,
            sampling=self.SAMPLING,
        )
        result = spec.execute()
        assert result.is_sampled
        assert result.sampled_periods == SMALL.refs_per_core // 400
        # And the sampled counters survive the strict serializer.
        back = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert back == result


class TestEngineSpecs:
    """Spec identity and round-trip for the multi-predictor scenarios."""

    SHARED = PrefetcherConfig.virtualized(8).with_engines(
        EngineConfig.btb("virtualized"), EngineConfig.lvp("virtualized")
    )

    def test_engine_spec_round_trips(self):
        spec = ExperimentSpec.build("Qry1", self.SHARED, scale=SMALL)
        back = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec and back.key == spec.key
        assert back.prefetcher.engines == self.SHARED.engines

    def test_engine_variants_have_distinct_keys(self):
        variants = [
            PrefetcherConfig.none(),
            PrefetcherConfig.none().with_engines(EngineConfig.btb()),
            PrefetcherConfig.none().with_engines(EngineConfig.btb("virtualized")),
            PrefetcherConfig.none().with_engines(
                EngineConfig.btb(n_sets=32, assoc=4)
            ),
            PrefetcherConfig.none().with_engines(EngineConfig.lvp()),
            self.SHARED,
        ]
        keys = {
            ExperimentSpec.build("Qry1", v, scale=SMALL).key for v in variants
        }
        assert len(keys) == len(variants)

    def test_engine_result_round_trips_with_stats(self):
        spec = ExperimentSpec.build(
            "Qry1",
            PrefetcherConfig.none().with_engines(EngineConfig.btb("virtualized")),
            scale=SMALL,
        )
        result = spec.execute()
        assert result.engine_stats["btb"]["lookups"] > 0
        payload = json.loads(json.dumps(result_to_dict(result)))
        back = result_from_dict(payload)
        assert back == result
        assert back.engine_stats == result.engine_stats


_FLOATS = None
if HAVE_HYPOTHESIS:
    _FLOATS = st.floats(
        allow_nan=False, allow_infinity=False, width=64,
        min_value=-1e12, max_value=1e12,
    )

    def _result_strategy():
        ints = st.integers(min_value=0, max_value=2**40)
        return st.builds(
            SimResult,
            workload=st.sampled_from(["Qry1", "Apache", "Oracle"]),
            config_label=st.sampled_from(["NoPF", "1K-11a", "PV8"]),
            n_cores=st.integers(min_value=1, max_value=8),
            refs=ints,
            covered=ints,
            uncovered=ints,
            overpredictions=ints,
            l2_requests=ints,
            l2_pv_requests=ints,
            offchip_reads=ints,
            offchip_pv_reads=ints,
            pv_l2_fill_rate=_FLOATS,
            pvcache_hit_rate=_FLOATS,
            instructions=ints,
            elapsed_cycles=_FLOATS,
            per_core_cycles=st.lists(_FLOATS, max_size=4),
            window_ipcs=st.lists(_FLOATS, max_size=8),
            extra=st.dictionaries(
                st.text(min_size=1, max_size=12), _FLOATS, max_size=4
            ),
        )

    class TestResultRoundTripProperties:
        @settings(max_examples=60, deadline=None)
        @given(result=_result_strategy())
        def test_json_round_trip_preserves_everything(self, result):
            payload = json.loads(json.dumps(result_to_dict(result)))
            back = result_from_dict(payload)
            assert back == result
            assert canonical_result_json(back) == canonical_result_json(result)


class TestResultRoundTrip:
    def test_real_simulation_round_trips(self):
        """A real result — nested cache/PVProxy stats included — survives JSON."""
        spec = ExperimentSpec.build(
            "Qry1", PrefetcherConfig.virtualized(8), scale=SMALL
        )
        result = spec.execute()
        assert result.window_ipcs and result.per_core_cycles  # nested payloads
        payload = json.loads(json.dumps(result_to_dict(result)))
        back = result_from_dict(payload)
        assert back == result
        assert back.summary() == result.summary()

    def test_missing_field_rejected(self):
        payload = result_to_dict(SimResult("Qry1", "NoPF", 4, 100))
        payload.pop("covered")
        with pytest.raises(ResultSchemaError):
            result_from_dict(payload)

    def test_unknown_field_rejected(self):
        payload = result_to_dict(SimResult("Qry1", "NoPF", 4, 100))
        payload["bogus"] = 1
        with pytest.raises(ResultSchemaError):
            result_from_dict(payload)
