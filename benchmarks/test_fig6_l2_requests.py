"""Figure 6: L2 request increase due to virtualization (+ Section 4.3)."""

from repro.analysis.figures import figure6, pv_l2_fill_rates
from repro.analysis.report import render_figure


def test_figure6_l2_request_increase(record_figure):
    fig = record_figure("figure6", figure6, render_figure)

    pv8 = [r["l2_request_increase"] for r in fig.rows if r["config"] == "PV-8"]
    pv16 = [r["l2_request_increase"] for r in fig.rows if r["config"] == "PV-16"]
    average = sum(pv8) / len(pv8)

    # Paper: between 25% and 44%, average 33%.  Allow a wider band at
    # reduced scale, but the increase must be substantial and bounded.
    assert 0.10 < average < 0.60
    assert all(0.02 < x < 1.0 for x in pv8)
    # PV-16 does not change the picture much (short-term reuse only).
    for a, b in zip(pv8, pv16):
        assert abs(a - b) < 0.15


def test_section_4_3_pv_requests_filled_by_l2(record_figure):
    fig = record_figure("section4_3_fill_rate", pv_l2_fill_rates, render_figure)
    rates = [r["pv_l2_fill_rate"] for r in fig.rows]
    # Paper: more than 98% across all workloads; at reduced scale the L2
    # is proportionally colder, so require a slightly looser floor.
    assert min(rates) > 0.90
    assert sum(rates) / len(rates) > 0.95
