"""Performance smoke benchmark: simulator throughput in refs/sec.

Times a fixed workload (Apache, SMS-1K, analytic timing — the hot path
every figure exercises) plus one contended configuration, and maintains
``BENCH_perf.json`` at the repository root so successive PRs accumulate a
throughput trajectory.  The assertions are deliberately loose (the run
must finish and make progress); the JSON is the artifact.

Three files are involved so the committed trajectory stays stable across
machines while CI still gates on fresh numbers:

* ``benchmarks/results/perf_baseline.json`` — a faithful copy of the
  ``BENCH_perf.json`` found *before* this run (what the tree was shipped
  with); the perf gate (``benchmarks/check_perf.py``) compares against it.
* ``benchmarks/results/perf_current.json`` — this run's measurements,
  written unconditionally.
* ``BENCH_perf.json`` — rewritten only when some label's ``refs_per_sec``
  moved beyond the tolerance (``REPRO_PERF_TOLERANCE``, default 25%), so
  runner-to-runner noise and environment-dependent fields (``python``,
  ``machine``) stop churning the committed file on every machine.  Set
  ``REPRO_PERF_UPDATE=0`` to never touch the committed trajectory (e.g.
  on a machine much slower than the one that recorded it).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_perf.json"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
BASELINE_SNAPSHOT = RESULTS_DIR / "perf_baseline.json"
CURRENT_PATH = RESULTS_DIR / "perf_current.json"
#: Records what *we* last wrote to BENCH_perf.json, so an externally
#: changed trajectory (git pull / checkout) re-arms the baseline snapshot
#: while our own rewrites do not.
WRITTEN_MARKER = RESULTS_DIR / "perf_trajectory_written.json"

#: Fixed measurement workload: big enough to dominate setup cost, small
#: enough to stay a smoke test.
REFS_PER_CORE = 6_000
WARMUP_REFS = 2_000

#: Relative refs/sec movement below which the committed trajectory file is
#: left untouched (machine noise, not a real perf change).
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.25"))


def _measure(label: str, prefetcher, system=None) -> dict:
    workload = get_workload("Apache")
    sim = CMPSimulator(workload, prefetcher, system=system)
    start = time.perf_counter()
    result = sim.run(REFS_PER_CORE, warmup_refs=WARMUP_REFS)
    elapsed = time.perf_counter() - start
    total_refs = (REFS_PER_CORE + WARMUP_REFS) * result.n_cores
    return {
        "label": label,
        "workload": "Apache",
        "refs_per_core": REFS_PER_CORE,
        "warmup_refs": WARMUP_REFS,
        "total_refs": total_refs,
        "elapsed_s": round(elapsed, 4),
        "refs_per_sec": round(total_refs / elapsed, 1),
        "aggregate_ipc": round(result.aggregate_ipc, 4),
    }


def _trajectory_moved(old_payload, runs) -> bool:
    """Whether the committed trajectory should be rewritten.

    Only ``refs_per_sec`` per label is compared — never the environment
    fields (``python``, ``machine``) — and only movements beyond the
    tolerance count, in either direction.
    """
    if not isinstance(old_payload, dict):
        return True
    old_runs = {
        run.get("label"): run
        for run in old_payload.get("runs", [])
        if isinstance(run, dict)
    }
    if {run["label"] for run in runs} != set(old_runs):
        return True
    for run in runs:
        old_rate = old_runs[run["label"]].get("refs_per_sec", 0)
        if not old_rate or old_rate <= 0:
            return True
        if abs(run["refs_per_sec"] - old_rate) / old_rate > TOLERANCE:
            return True
    return False


def test_perf_smoke():
    runs = [
        _measure("sms-1k", PrefetcherConfig.dedicated(1024, 11)),
        _measure("pv8", PrefetcherConfig.virtualized(8)),
        _measure(
            "pv8-contended-1ch",
            PrefetcherConfig.virtualized(8),
            system=SystemConfig.baseline().with_contention(dram_channels=1),
        ),
    ]
    payload = {
        "bench": "perf_smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
    }
    text = json.dumps(payload, indent=1) + "\n"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    CURRENT_PATH.write_text(text)

    old_payload = None
    if BENCH_PATH.is_file():
        old_text = BENCH_PATH.read_text()
        # Snapshot the trajectory the checkout *shipped with*, exactly once
        # per state of the committed file: a run in the same workspace must
        # not replace it with its own numbers (the perf gate would then
        # compare this code against itself), but a BENCH_perf.json changed
        # by something other than us (git pull, checkout) re-arms it.
        last_written = (
            WRITTEN_MARKER.read_text() if WRITTEN_MARKER.is_file() else None
        )
        if not BASELINE_SNAPSHOT.is_file() or (
            old_text != BASELINE_SNAPSHOT.read_text()
            and old_text != last_written
        ):
            BASELINE_SNAPSHOT.write_text(old_text)
        try:
            old_payload = json.loads(old_text)
        except ValueError:
            old_payload = None
    update_ok = os.environ.get("REPRO_PERF_UPDATE", "1") != "0"
    if update_ok and _trajectory_moved(old_payload, runs):
        BENCH_PATH.write_text(text)
        WRITTEN_MARKER.write_text(text)

    for run in runs:
        # Progress, not speed: wildly slow CI boxes must not flake here.
        assert run["refs_per_sec"] > 100, run
        assert run["aggregate_ipc"] > 0, run
