"""Performance smoke benchmark: simulator throughput in refs/sec.

Times a fixed workload (Apache, SMS-1K, analytic timing — the hot path
every figure exercises) plus one contended configuration and one
**sampled** configuration (``pv8-sampled``: the two-speed engine of
``repro.sim.sampling``), and maintains ``BENCH_perf.json`` at the
repository root so successive PRs accumulate a throughput trajectory.
Most assertions are deliberately loose (the run must finish and make
progress); the JSON is the artifact.  The sampled label carries two hard
guarantees on top:

* ``pv8-sampled`` must deliver >= 5x the refs/sec of the full-detail
  ``pv8`` label on the same machine — measured as *interleaved pairs*
  (full run, then sampled run, back to back, three times; the best
  pairwise ratio is used) so load spikes hit both sides of a pair alike;
  both share the process's compiled traces and the sampled run starts
  from the shared warm-state checkpoint, i.e. the steady state of a
  sweep;
* its aggregate-IPC estimate must fall inside the full-detail run's 95%
  confidence interval (windows at the sampling period's grain) — a fully
  deterministic check.

The ``pv8-sampled-vec`` label stacks the vectorized batch functional
path (``repro.sim.batchkernel``, PR 8) on a longer sampling period: it
must deliver >= 2x the refs/sec of ``pv8-sampled`` (interleaved pairs
again), keep its IPC inside the same full-detail 95% CI, and agree
*exactly* with a scalar (``use_vec=False``) run of its own protocol.

The ``pv8-warmstore`` label measures the persistent artifact store
(``repro.runner.artifacts``): a cold run into a fresh store vs the same
run restoring its warm-state checkpoint and compiled traces from disk —
the second sweep invocation's win.  The warm run must beat the cold one
(``vs_cold > 1``), actually hit the store, and produce a bitwise
identical result; the store is scoped to this label, so every other
label runs store-free exactly as before.

Three files are involved so the committed trajectory stays stable across
machines while CI still gates on fresh numbers:

* ``benchmarks/results/perf_baseline.json`` — a faithful copy of the
  ``BENCH_perf.json`` found *before* this run (what the tree was shipped
  with); the perf gate (``benchmarks/check_perf.py``) compares against it.
* ``benchmarks/results/perf_current.json`` — this run's measurements,
  written unconditionally.
* ``BENCH_perf.json`` — rewritten only when some label's ``refs_per_sec``
  moved beyond the tolerance (``REPRO_PERF_TOLERANCE``, default 25%), so
  runner-to-runner noise and environment-dependent fields (``python``,
  ``machine``) stop churning the committed file on every machine.  Set
  ``REPRO_PERF_UPDATE=0`` to never touch the committed trajectory (e.g.
  on a machine much slower than the one that recorded it).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.sim import batchkernel
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_perf.json"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
BASELINE_SNAPSHOT = RESULTS_DIR / "perf_baseline.json"
CURRENT_PATH = RESULTS_DIR / "perf_current.json"
#: Records what *we* last wrote to BENCH_perf.json, so an externally
#: changed trajectory (git pull / checkout) re-arms the baseline snapshot
#: while our own rewrites do not.
WRITTEN_MARKER = RESULTS_DIR / "perf_trajectory_written.json"

#: Fixed measurement workload: big enough to dominate setup cost, small
#: enough to stay a smoke test.
REFS_PER_CORE = 6_000
WARMUP_REFS = 2_000

#: The two-speed layout of the ``pv8-sampled`` label (validated to stay
#: inside the full run's 95% CI at >= 5x throughput; the same shape
#: ``SamplingConfig.for_scale`` derives for this scale).
SAMPLING = SamplingConfig.smarts(
    period_refs=1_500, detail_refs=120, warm_refs=60, functional_refs=220
)

#: Required pv8-sampled vs pv8 throughput ratio on the same machine.
SAMPLED_SPEEDUP_FLOOR = 5.0

#: The ``pv8-sampled-vec`` label: long sampling periods whose big
#: functional spans run on the vectorized batch kernel
#: (``repro.sim.batchkernel``).  Fewer detailed windows per reference
#: moves the wall-clock into functional warming — exactly the stage the
#: kernel accelerates — while the IPC estimate must still land inside the
#: full-detail run's 95% CI (asserted below, like ``pv8-sampled``).
VEC_REFS_PER_CORE = 48_000
VEC_SAMPLING = SamplingConfig.smarts(
    period_refs=12_000, detail_refs=120, warm_refs=60, functional_refs=1_200
)

#: Required pv8-sampled-vec vs pv8-sampled throughput ratio (same
#: machine, interleaved pairs).
VEC_SPEEDUP_FLOOR = 2.0

#: Relative refs/sec movement below which the committed trajectory file is
#: left untouched (machine noise, not a real perf change).
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.25"))


def _time_once(prefetcher, system=None, window_refs: int = 0,
               refs: int = REFS_PER_CORE, use_vec=None):
    """One timed simulation; returns ``(SimResult, elapsed_seconds)``."""
    workload = get_workload("Apache")
    sim = CMPSimulator(workload, prefetcher, system=system)
    if use_vec is not None:
        sim.use_vec = use_vec
    start = time.perf_counter()
    result = sim.run(
        refs, warmup_refs=WARMUP_REFS, window_refs=window_refs
    )
    return result, time.perf_counter() - start


def _run_dict(label: str, result, elapsed: float,
              refs: int = REFS_PER_CORE) -> dict:
    total_refs = (refs + WARMUP_REFS) * result.n_cores
    return {
        "label": label,
        "workload": "Apache",
        "refs_per_core": refs,
        "warmup_refs": WARMUP_REFS,
        "total_refs": total_refs,
        "elapsed_s": round(elapsed, 4),
        "refs_per_sec": round(total_refs / elapsed, 1),
        "aggregate_ipc": round(result.aggregate_ipc, 4),
    }


def _measure(label: str, prefetcher, system=None, window_refs: int = 0,
             repeats: int = 1):
    """Time one configuration; return ``(run_dict, SimResult)``.

    ``repeats`` > 1 keeps the fastest timing (standard noise reduction);
    the result payload is identical across repeats, so which run's result
    is reported does not matter.
    """
    best = None
    for _ in range(repeats):
        result, elapsed = _time_once(prefetcher, system=system,
                                     window_refs=window_refs)
        if best is None or elapsed < best[1]:
            best = (result, elapsed)
    return _run_dict(label, best[0], best[1]), best[0]


def _measure_sampled_pair():
    """Time full-detail pv8 and two-speed pv8 as interleaved pairs.

    Measures the sweep steady state: the shared warm-state checkpoint is
    built first by a (cheap, untimed) baseline configuration, exactly as
    the first spec of a workload group would leave it for the rest.  The
    full and sampled runs of a pair execute back to back, so a machine
    load spike distorts the pair's *ratio* far less than it distorts
    either timing alone; the reported speedup is the best (least
    contaminated) of three pairwise ratios.

    Returns ``(pv8_run_dict, sampled_run_dict, full_result)``; the
    sampled dict carries the speedup (``vs_pv8``) and CI-containment
    verdict, and ``full_result`` lets later labels reuse the same 95% CI.
    """
    pv8 = PrefetcherConfig.virtualized(8)
    system = SystemConfig.baseline().with_sampling(SAMPLING)
    workload = get_workload("Apache")
    CMPSimulator(workload, PrefetcherConfig.none(), system=system).run(
        1, warmup_refs=WARMUP_REFS
    )
    pairs = []
    for _ in range(3):
        full_result, full_elapsed = _time_once(
            pv8, window_refs=SAMPLING.period_refs
        )
        sampled_result, sampled_elapsed = _time_once(pv8, system=system)
        pairs.append(
            (full_result, full_elapsed, sampled_result, sampled_elapsed)
        )
    full_result, full_elapsed = min(
        ((p[0], p[1]) for p in pairs), key=lambda t: t[1]
    )
    sampled_result, sampled_elapsed = min(
        ((p[2], p[3]) for p in pairs), key=lambda t: t[1]
    )
    speedup = max(p[1] / p[3] for p in pairs)
    pv8_run = _run_dict("pv8", full_result, full_elapsed)
    sampled_run = _run_dict("pv8-sampled", sampled_result, sampled_elapsed)
    ci = full_result.ipc_ci()
    sampled_run["sampling"] = {
        "period_refs": SAMPLING.period_refs,
        "detail_refs": SAMPLING.detail_refs,
        "warm_refs": SAMPLING.warm_refs,
        "functional_refs": SAMPLING.functional_refs,
    }
    sampled_run["vs_pv8"] = round(speedup, 2)
    sampled_run["full_ipc_ci95"] = [round(ci.lower, 4), round(ci.upper, 4)]
    sampled_run["ipc_in_full_ci"] = ci.contains(sampled_result.aggregate_ipc)
    return pv8_run, sampled_run, full_result


def _measure_vec_sampled(full_result):
    """Time the ``pv8-sampled-vec`` label against ``pv8-sampled``.

    The vec label runs 8x the references of ``pv8-sampled`` under 8x the
    sampling period (same detailed/warm window sizes, so the detail
    budget per reference shrinks and the functional stage — the one the
    batch kernel vectorizes — dominates).  Both labels are timed back to
    back as interleaved pairs and the best pairwise *refs/sec* ratio is
    the speedup, mirroring ``_measure_sampled_pair``.  Validity gate: the
    vec label's IPC estimate must land inside the full-detail run's 95%
    CI, same as ``pv8-sampled``.  A scalar (``use_vec=False``) run of the
    identical protocol is recorded informationally and must agree with
    the vectorized run's IPC exactly (determinism guarantee).
    """
    pv8 = PrefetcherConfig.virtualized(8)
    base_system = SystemConfig.baseline().with_sampling(SAMPLING)
    vec_system = SystemConfig.baseline().with_sampling(VEC_SAMPLING)
    workload = get_workload("Apache")
    CMPSimulator(workload, PrefetcherConfig.none(), system=vec_system).run(
        1, warmup_refs=WARMUP_REFS
    )
    n = full_result.n_cores
    sampled_total = (REFS_PER_CORE + WARMUP_REFS) * n
    vec_total = (VEC_REFS_PER_CORE + WARMUP_REFS) * n
    pairs = []
    for _ in range(3):
        _, sampled_elapsed = _time_once(pv8, system=base_system)
        vec_result, vec_elapsed = _time_once(
            pv8, system=vec_system, refs=VEC_REFS_PER_CORE
        )
        pairs.append((sampled_elapsed, vec_result, vec_elapsed))
    vec_result, vec_elapsed = min(
        ((p[1], p[2]) for p in pairs), key=lambda t: t[1]
    )
    speedup = max(
        (vec_total / p[2]) / (sampled_total / p[0]) for p in pairs
    )
    scalar_result, scalar_elapsed = _time_once(
        pv8, system=vec_system, refs=VEC_REFS_PER_CORE, use_vec=False
    )
    run = _run_dict("pv8-sampled-vec", vec_result, vec_elapsed,
                    refs=VEC_REFS_PER_CORE)
    run["sampling"] = {
        "period_refs": VEC_SAMPLING.period_refs,
        "detail_refs": VEC_SAMPLING.detail_refs,
        "warm_refs": VEC_SAMPLING.warm_refs,
        "functional_refs": VEC_SAMPLING.functional_refs,
    }
    run["vectorized"] = batchkernel.default_enabled()
    run["vs_pv8_sampled"] = round(speedup, 2)
    run["vs_scalar_same_shape"] = round(scalar_elapsed / vec_elapsed, 2)
    ci = full_result.ipc_ci()
    run["full_ipc_ci95"] = [round(ci.lower, 4), round(ci.upper, 4)]
    run["ipc_in_full_ci"] = ci.contains(vec_result.aggregate_ipc)
    run["scalar_ipc_identical"] = (
        scalar_result.aggregate_ipc == vec_result.aggregate_ipc
    )
    return run


def _measure_warmstore():
    """Time the ``pv8-warmstore`` label: cold vs warm persistent store.

    Each trial gets a fresh artifact-store directory and empties both
    in-process caches before each timed run, so the *cold* run computes
    (and writes behind) every warm-state checkpoint and compiled trace,
    and the *warm* run — the second invocation of the same sweep, as a
    fresh process would see it — restores everything from disk.  Cold and
    warm execute back to back per trial (interleaved pairs, like the
    other sampled labels) and the best pairwise ratio is the reported
    speedup.  Validity gates: the warm run's result is bitwise identical
    to the cold run's, and it actually hit the store.
    """
    import shutil
    import tempfile

    from repro.runner import artifacts
    from repro.sim.simulator import WARM_STATE_CACHE
    from repro.workloads.generator import TRACE_CACHE

    pv8 = PrefetcherConfig.virtualized(8)
    system = SystemConfig.baseline().with_sampling(SAMPLING)
    pairs = []
    hits = {}
    try:
        for _ in range(3):
            root = tempfile.mkdtemp(prefix="perf-warmstore-")
            store = artifacts.ArtifactStore(root)
            artifacts.set_active(store)
            try:
                WARM_STATE_CACHE.clear()
                TRACE_CACHE.clear()
                cold_result, cold_elapsed = _time_once(pv8, system=system)
                WARM_STATE_CACHE.clear()
                TRACE_CACHE.clear()
                warm_result, warm_elapsed = _time_once(pv8, system=system)
                pairs.append(
                    (cold_result, cold_elapsed, warm_result, warm_elapsed)
                )
                hits = {
                    "warm_hits": store.warm_hits,
                    "trace_hits": store.trace_hits,
                    "quarantined": store.quarantined,
                }
            finally:
                artifacts.set_active(None)
                shutil.rmtree(root, ignore_errors=True)
    finally:
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
    cold_result, cold_elapsed = min(
        ((p[0], p[1]) for p in pairs), key=lambda t: t[1]
    )
    warm_result, warm_elapsed = min(
        ((p[2], p[3]) for p in pairs), key=lambda t: t[1]
    )
    run = _run_dict("pv8-warmstore", warm_result, warm_elapsed)
    run["cold_refs_per_sec"] = round(run["total_refs"] / cold_elapsed, 1)
    run["vs_cold"] = round(max(p[1] / p[3] for p in pairs), 2)
    run["store"] = hits
    run["result_identical"] = all(
        p[0] == p[2] for p in pairs
    ) and cold_result == warm_result
    return run


def _trajectory_moved(old_payload, runs) -> bool:
    """Whether the committed trajectory should be rewritten.

    Only ``refs_per_sec`` per label is compared — never the environment
    fields (``python``, ``machine``) — and only movements beyond the
    tolerance count, in either direction.
    """
    if not isinstance(old_payload, dict):
        return True
    old_runs = {
        run.get("label"): run
        for run in old_payload.get("runs", [])
        if isinstance(run, dict)
    }
    if {run["label"] for run in runs} != set(old_runs):
        return True
    for run in runs:
        old_rate = old_runs[run["label"]].get("refs_per_sec", 0)
        if not old_rate or old_rate <= 0:
            return True
        if abs(run["refs_per_sec"] - old_rate) / old_rate > TOLERANCE:
            return True
    return False


def test_perf_smoke():
    sms_run, _ = _measure("sms-1k", PrefetcherConfig.dedicated(1024, 11))
    # The pv8 label records per-window IPCs at the sampling period's grain
    # so the sampled label can be validated against its 95% CI; full and
    # sampled runs are timed as interleaved pairs for a stable ratio.
    pv8_run, sampled_run, full_result = _measure_sampled_pair()
    contended_run, _ = _measure(
        "pv8-contended-1ch",
        PrefetcherConfig.virtualized(8),
        system=SystemConfig.baseline().with_contention(dram_channels=1),
    )
    vec_run = _measure_vec_sampled(full_result)
    warmstore_run = _measure_warmstore()
    runs = [sms_run, pv8_run, contended_run, sampled_run, vec_run,
            warmstore_run]
    payload = {
        "bench": "perf_smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
    }
    text = json.dumps(payload, indent=1) + "\n"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    CURRENT_PATH.write_text(text)

    old_payload = None
    if BENCH_PATH.is_file():
        old_text = BENCH_PATH.read_text()
        # Snapshot the trajectory the checkout *shipped with*, exactly once
        # per state of the committed file: a run in the same workspace must
        # not replace it with its own numbers (the perf gate would then
        # compare this code against itself), but a BENCH_perf.json changed
        # by something other than us (git pull, checkout) re-arms it.
        last_written = (
            WRITTEN_MARKER.read_text() if WRITTEN_MARKER.is_file() else None
        )
        if not BASELINE_SNAPSHOT.is_file() or (
            old_text != BASELINE_SNAPSHOT.read_text()
            and old_text != last_written
        ):
            BASELINE_SNAPSHOT.write_text(old_text)
        try:
            old_payload = json.loads(old_text)
        except ValueError:
            old_payload = None
    update_ok = os.environ.get("REPRO_PERF_UPDATE", "1") != "0"
    if update_ok and _trajectory_moved(old_payload, runs):
        BENCH_PATH.write_text(text)
        WRITTEN_MARKER.write_text(text)

    for run in runs:
        # Progress, not speed: wildly slow CI boxes must not flake here.
        assert run["refs_per_sec"] > 100, run
        assert run["aggregate_ipc"] > 0, run

    # The sampled engine's two hard guarantees (machine-relative, so they
    # hold on slow boxes too): the speedup floor and statistical validity.
    assert sampled_run["vs_pv8"] >= SAMPLED_SPEEDUP_FLOOR, sampled_run
    assert sampled_run["ipc_in_full_ci"], sampled_run

    # The vectorized label's guarantees: throughput over pv8-sampled,
    # statistical validity, and scalar/vec determinism on one protocol.
    # The kernel engages whenever the environment allows it (the suite
    # also runs under REPRO_VEC=0, where the same label must still hold:
    # the long-period protocol beats pv8-sampled on the scalar path too,
    # and the IPC estimate is identical by construction).
    assert vec_run["vectorized"] == batchkernel.default_enabled(), vec_run
    assert vec_run["vs_pv8_sampled"] >= VEC_SPEEDUP_FLOOR, vec_run
    assert vec_run["ipc_in_full_ci"], vec_run
    assert vec_run["scalar_ipc_identical"], vec_run

    # The persistent-store label's guarantees: the warm (second)
    # invocation restored from disk, beat the cold one, and changed
    # nothing about the result.
    assert warmstore_run["store"]["warm_hits"] > 0, warmstore_run
    assert warmstore_run["store"]["trace_hits"] > 0, warmstore_run
    assert warmstore_run["store"]["quarantined"] == 0, warmstore_run
    assert warmstore_run["result_identical"], warmstore_run
    assert warmstore_run["vs_cold"] > 1.0, warmstore_run
