"""Performance smoke benchmark: simulator throughput in refs/sec.

Times a fixed workload (Apache, SMS-1K, analytic timing — the hot path
every figure exercises) plus one contended configuration, and writes the
measurements to ``BENCH_perf.json`` at the repository root so successive
PRs accumulate a throughput trajectory.  The assertions are deliberately
loose (the run must finish and make progress); the JSON is the artifact.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Fixed measurement workload: big enough to dominate setup cost, small
#: enough to stay a smoke test.
REFS_PER_CORE = 6_000
WARMUP_REFS = 2_000


def _measure(label: str, prefetcher, system=None) -> dict:
    workload = get_workload("Apache")
    sim = CMPSimulator(workload, prefetcher, system=system)
    start = time.perf_counter()
    result = sim.run(REFS_PER_CORE, warmup_refs=WARMUP_REFS)
    elapsed = time.perf_counter() - start
    total_refs = (REFS_PER_CORE + WARMUP_REFS) * result.n_cores
    return {
        "label": label,
        "workload": "Apache",
        "refs_per_core": REFS_PER_CORE,
        "warmup_refs": WARMUP_REFS,
        "total_refs": total_refs,
        "elapsed_s": round(elapsed, 4),
        "refs_per_sec": round(total_refs / elapsed, 1),
        "aggregate_ipc": round(result.aggregate_ipc, 4),
    }


def test_perf_smoke():
    runs = [
        _measure("sms-1k", PrefetcherConfig.dedicated(1024, 11)),
        _measure("pv8", PrefetcherConfig.virtualized(8)),
        _measure(
            "pv8-contended-1ch",
            PrefetcherConfig.virtualized(8),
            system=SystemConfig.baseline().with_contention(dram_channels=1),
        ),
    ]
    payload = {
        "bench": "perf_smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    for run in runs:
        # Progress, not speed: wildly slow CI boxes must not flake here.
        assert run["refs_per_sec"] > 100, run
        assert run["aggregate_ipc"] > 0, run
