"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper at the default
experiment scale (override with ``REPRO_REFS``/``REPRO_WARMUP``), renders
it as text, prints it, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from a single run of::

    pytest benchmarks/ --benchmark-only

Simulations are shared across benches through the sweep runner (the
session-local store-backed runner installed by the root conftest) and the
in-process experiment cache, so the figure drivers never repeat a
configuration.  Set ``REPRO_JOBS`` to fan misses across a process pool;
persistence stays session-local under pytest so stale stored results can
never satisfy the assertions (use ``--store`` with
``scripts/reproduce_all.py`` for durable result reuse).
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

import pytest

from repro.sim.experiment import ExperimentScale, clear_cache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The env-derived scale of the previous bench, for cross-scale isolation.
_LAST_SCALE: List[Optional[ExperimentScale]] = [None]


def save_result(name: str, text: str) -> None:
    """Print and archive one rendered table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(autouse=True)
def _isolate_scales():
    """Drop cached results whenever the env scale changed between benches.

    Spec keys embed the scale, so results from different ``REPRO_REFS``
    settings can never be conflated — but a scale switch mid-session would
    silently keep the old scale's results alive in memory.  Clearing on
    change keeps one session = one scale's working set.
    """
    scale = ExperimentScale.from_env()
    if _LAST_SCALE[0] is not None and _LAST_SCALE[0] != scale:
        clear_cache()
    _LAST_SCALE[0] = scale
    yield


@pytest.fixture
def record_figure(benchmark):
    """Run a figure driver exactly once under pytest-benchmark and save it."""

    def runner(name, fn, render):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        save_result(name, render(result))
        return result

    return runner
