"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper at the default
experiment scale (override with ``REPRO_REFS``/``REPRO_WARMUP``), renders
it as text, prints it, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from a single run of::

    pytest benchmarks/ --benchmark-only

Simulations are shared across benches through the in-process experiment
cache, so the figure drivers never repeat a configuration.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print and archive one rendered table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture
def record_figure(benchmark):
    """Run a figure driver exactly once under pytest-benchmark and save it."""

    def runner(name, fn, render):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        save_result(name, render(result))
        return result

    return runner
