"""Figure 4: SMS performance potential vs. predictor table size."""

from repro.analysis.figures import figure4
from repro.analysis.report import render_figure


def test_figure4_sms_potential(record_figure):
    fig = record_figure("figure4", figure4, render_figure)

    # Shape assertions from Section 4.2.
    for workload in {r["workload"] for r in fig.rows}:
        inf = fig.value("covered", workload=workload, config="Infinite")
        k11 = fig.value("covered", workload=workload, config="1K-11a")
        k16 = fig.value("covered", workload=workload, config="1K-16a")
        s8 = fig.value("covered", workload=workload, config="8-11a")
        # 1K-11a within a few percent of Infinite and of 1K-16a.
        assert abs(inf - k11) < 0.06
        assert abs(k16 - k11) < 0.06
        # Large tables beat the smallest by a clear margin.
        assert k11 > s8

    # Oracle is the most size-sensitive workload; Qry1 the least.
    oracle_drop = fig.value("covered", workload="Oracle", config="1K-11a") - \
        fig.value("covered", workload="Oracle", config="8-11a")
    qry1_keep = fig.value("covered", workload="Qry1", config="16-11a") / \
        fig.value("covered", workload="Qry1", config="1K-11a")
    assert oracle_drop > 0.2
    assert qry1_keep > 0.8
