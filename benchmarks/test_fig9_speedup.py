"""Figure 9: speedup of dedicated and virtualized SMS over no prefetching."""

from repro.analysis.figures import figure9
from repro.analysis.report import render_figure


def test_figure9_speedups(record_figure):
    fig = record_figure("figure9", figure9, render_figure)

    workloads = sorted({r["workload"] for r in fig.rows})
    s1k = {w: fig.value("speedup", workload=w, config="1K-11a") for w in workloads}
    s16 = {w: fig.value("speedup", workload=w, config="16-11a") for w in workloads}
    s8 = {w: fig.value("speedup", workload=w, config="8-11a") for w in workloads}
    pv8 = {w: fig.value("speedup", workload=w, config="PV8") for w in workloads}

    avg = lambda d: sum(d.values()) / len(d)

    # Paper headline: the virtualized prefetcher matches the dedicated one
    # (19% vs 18% on average) ...
    assert abs(avg(pv8) - avg(s1k)) < 0.05
    assert avg(s1k) > 0.10
    # ... while the small dedicated tables achieve only about half.
    small_avg = (avg(s16) + avg(s8)) / 2
    assert small_avg < 0.7 * avg(s1k)

    # Per-workload anchors: Qry1 is the largest speedup, Oracle the smallest
    # among the 1K bars.
    assert s1k["Qry1"] == max(s1k.values())
    assert s1k["Oracle"] == min(s1k.values())
    # PV-8 is within a few points of 1K-11a on every workload.
    for w in workloads:
        assert abs(pv8[w] - s1k[w]) < 0.10
