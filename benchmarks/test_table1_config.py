"""Table 1: base processor configuration."""

from repro.analysis.report import render_table
from repro.analysis.tables import table1


def test_table1_configuration(record_figure):
    def render(t):
        rows = [{"parameter": k, "value": v} for k, v in t.items()]
        return render_table(["parameter", "value"], rows,
                            title="Table 1: Base processor configuration")

    t = record_figure("table1", table1, render)
    assert "8MB" in t["UL2"]
    assert "400 cycles" in t["Main Memory"]
