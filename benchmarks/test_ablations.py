"""Ablations of PV design choices called out in DESIGN.md (Section 6 there).

Not paper figures — these quantify the design decisions the paper makes in
prose: the PVCache sizing of Section 4.3, the virtualization-aware-cache
option of Section 2.2, and the miss-report alternative of Section 2.2.
"""

from repro.analysis.report import render_table
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import ExperimentScale, run_experiment

WORKLOAD = "Apache"
SCALE = ExperimentScale.from_env()


def test_ablation_pvcache_size(record_figure):
    """Paper (Section 4.3): little benefit beyond 8 PVCache sets."""

    def run():
        ref = run_experiment(WORKLOAD, PrefetcherConfig.dedicated(1024), scale=SCALE)
        rows = []
        for entries in (2, 4, 8, 16, 32):
            pv = run_experiment(
                WORKLOAD, PrefetcherConfig.virtualized(entries), scale=SCALE
            )
            rows.append(
                {
                    "pvcache_sets": entries,
                    "coverage": pv.coverage,
                    "l2_request_increase": pv.l2_request_increase(ref),
                    "pvcache_hit_rate": pv.pvcache_hit_rate,
                }
            )
        return rows

    def render(rows):
        return render_table(
            ["pvcache_sets", "coverage", "l2_request_increase", "pvcache_hit_rate"],
            rows,
            title=f"Ablation: PVCache size ({WORKLOAD})",
        )

    rows = record_figure("ablation_pvcache_size", run, render)
    by_sets = {r["pvcache_sets"]: r for r in rows}
    # Coverage is essentially flat in PVCache size (fetch-on-demand always
    # returns the entry) ...
    assert abs(by_sets[8]["coverage"] - by_sets[32]["coverage"]) < 0.05
    # ... and 8 -> 32 sets barely reduces L2 requests (the paper's reason
    # for choosing 8).
    saving = (
        by_sets[8]["l2_request_increase"] - by_sets[32]["l2_request_increase"]
    )
    assert saving < 0.15


def test_ablation_pv_aware_caches(record_figure):
    """Section 2.2 option: drop dirty PV lines at the L2 instead of writing
    them off-chip — trades a little effectiveness for zero PV writes."""

    def run():
        rows = []
        # A 2MB L2 (the Figure 10 small point) actually evicts dirty PV
        # lines; at 8MB the L2 absorbs them all and the option is moot.
        for aware in (False, True):
            pv = run_experiment(
                "Zeus",
                PrefetcherConfig.virtualized(8),
                scale=SCALE,
                l2_size=2 * 1024**2,
                pv_aware=aware,
            )
            rows.append(
                {
                    "pv_aware": aware,
                    "coverage": pv.coverage,
                    "offchip_pv_writes": pv.offchip_pv_writes,
                    "offchip_pv_reads": pv.offchip_pv_reads,
                }
            )
        return rows

    def render(rows):
        return render_table(
            ["pv_aware", "coverage", "offchip_pv_writes", "offchip_pv_reads"],
            rows,
            title="Ablation: virtualization-aware caches (Zeus, 2MB L2)",
        )

    rows = record_figure("ablation_pv_aware", run, render)
    normal, aware = rows
    assert aware["offchip_pv_writes"] == 0      # no PV write-back traffic
    assert normal["offchip_pv_writes"] >= 0
    # Dropping state costs at most a little coverage.
    assert aware["coverage"] > 0.6 * normal["coverage"]


def test_ablation_report_miss_on_fetch(record_figure):
    """Section 2.2 alternative: report a predictor miss instead of waiting
    for the PVTable fetch.  Loses the first prediction per set round-trip."""

    def run():
        rows = []
        for report in (False, True):
            pv = run_experiment(
                WORKLOAD,
                PrefetcherConfig(
                    mode="virtualized", pht_sets=1024, pht_assoc=11,
                    pvcache_entries=8, report_miss_on_fetch=report,
                ),
                scale=SCALE,
            )
            rows.append({"report_miss": report, "coverage": pv.coverage})
        return rows

    def render(rows):
        return render_table(
            ["report_miss", "coverage"],
            rows,
            title=f"Ablation: report-miss-on-fetch ({WORKLOAD})",
        )

    rows = record_figure("ablation_report_miss", run, render)
    waiting, reporting = rows
    assert reporting["coverage"] <= waiting["coverage"] + 0.02
