"""Figure 11: PV remains effective with a slower L2 (Section 4.5)."""

from repro.analysis.figures import figure11
from repro.analysis.report import render_figure


def test_figure11_l2_latency_sensitivity(record_figure):
    fig = record_figure("figure11", figure11, render_figure)

    workloads = sorted({r["workload"] for r in fig.rows})
    dedicated = [fig.value("speedup", workload=w, config="1K-11a") for w in workloads]
    virtualized = [fig.value("speedup", workload=w, config="PV8") for w in workloads]

    avg_d = sum(dedicated) / len(dedicated)
    avg_v = sum(virtualized) / len(virtualized)

    # Paper: with 8/16-cycle L2 tag/data latency the average difference
    # between dedicated and virtualized is below ~1.5%; allow a little
    # more at reduced scale.
    assert abs(avg_d - avg_v) < 0.04
    assert avg_d > 0.10  # prefetching still pays with a slower L2
