"""Table 2: the workload inventory."""

from repro.analysis.report import render_table
from repro.analysis.tables import table2


def test_table2_workloads(record_figure):
    def render(rows):
        return render_table(
            ["workload", "category", "footprint_mb", "signatures", "description"],
            rows,
            title="Table 2: Workloads (synthetic substitutes; see DESIGN.md)",
        )

    rows = record_figure("table2", table2, render)
    assert len(rows) == 8
