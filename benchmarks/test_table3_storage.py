"""Table 3 and Section 4.6: storage arithmetic (reproduced exactly)."""

from repro.analysis.report import render_table
from repro.analysis.tables import pvproxy_budget_table, table3_rows
from repro.core.storage import pvproxy_budget, reduction_factor


def test_table3_storage(record_figure):
    def render(rows):
        return render_table(
            ["configuration", "tags", "patterns", "total"],
            rows,
            title="Table 3: Storage for different predictor configurations",
        )

    rows = record_figure("table3", lambda: table3_rows(published=True), render)
    totals = {r["configuration"]: r["total"] for r in rows}
    assert totals["1K-16"] == "86KB"
    assert totals["1K-11"] == "59.125KB"


def test_section_4_6_pvproxy_budget(record_figure):
    def render(rows):
        return render_table(
            ["component", "bytes"],
            rows,
            title="Section 4.6: PVProxy space requirements",
        )

    record_figure("section4_6_budget", pvproxy_budget_table, render)
    assert pvproxy_budget()["total_bytes"] == 889.0
    assert reduction_factor() > 60
