"""Figure 5: full table-size sweep for three representative workloads."""

from repro.analysis.figures import FIG5_SET_SWEEP, figure5
from repro.analysis.report import render_figure


def test_figure5_size_sweep(record_figure):
    fig = record_figure("figure5", figure5, render_figure)

    for workload in ("Apache", "Oracle", "Qry17"):
        curve = [
            fig.value("covered", workload=workload, config=f"{label}")
            for label in ("1K-11a", "256-11a", "64-11a", "16-11a", "8-11a")
        ]
        # Coverage decreases (weakly) as the table shrinks...
        for bigger, smaller in zip(curve, curve[1:]):
            assert smaller <= bigger + 0.03
        # ...and the total drop is significant (paper: every workload
        # experiences a significant drop across the sweep).
        assert curve[0] - curve[-1] > 0.1
