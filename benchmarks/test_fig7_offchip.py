"""Figure 7: off-chip bandwidth increase split into misses and writebacks."""

from repro.analysis.figures import figure7
from repro.analysis.report import render_figure


def test_figure7_offchip_bandwidth(record_figure):
    fig = record_figure("figure7", figure7, render_figure)

    totals = [r["total"] for r in fig.rows if r["config"] == "PV-8"]
    average = sum(totals) / len(totals)

    # Paper: average 3.3%, max 6.5%.  The off-chip cost of PV must stay
    # small even though Figure 6's request increase is large — the L2
    # absorbs nearly all PV traffic.
    assert average < 0.10
    assert max(totals) < 0.20

    # Zeus (the write-heavy workload) shows the largest writeback increase.
    zeus_wb = fig.value("l2_writebacks", workload="Zeus", config="PV-8")
    other_wb = [
        r["l2_writebacks"]
        for r in fig.rows
        if r["config"] == "PV-8" and r["workload"] not in ("Zeus",)
    ]
    assert zeus_wb >= max(other_wb) - 0.02
