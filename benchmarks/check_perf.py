#!/usr/bin/env python
"""CI perf-regression gate over the perf-smoke measurements.

Compares the fresh perf-smoke run (``benchmarks/results/perf_current.json``)
against the baseline the tree shipped with (the copy of ``BENCH_perf.json``
that ``benchmarks/test_perf_smoke.py`` snapshots to
``benchmarks/results/perf_baseline.json`` *before* it may rewrite the
trajectory) and fails when any label's ``refs_per_sec`` dropped by more
than the tolerance.

Only per-label throughput is compared.  Environment-dependent report
fields — ``python``, ``machine``, absolute ``elapsed_s`` — are ignored, so
the gate is meaningful on any runner while the committed file still
records where its numbers came from.

Usage (stdlib only, no package imports)::

    python benchmarks/check_perf.py                 # after the perf smoke
    python benchmarks/check_perf.py --tolerance 0.4 # noisy runner
    REPRO_PERF_TOLERANCE=0.4 python benchmarks/check_perf.py
    python benchmarks/check_perf.py --require pv8-sampled  # label must exist

``--require LABEL`` (repeatable) additionally fails when the current run
lacks the label — guarding against a bench silently dropping a
configuration (e.g. the two-speed ``pv8-sampled`` label) that the
baseline never knew about.

Exit status: 0 when every label holds (improvements always pass), 1 on a
regression beyond tolerance or missing/unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
DEFAULT_BASELINE = HERE / "results" / "perf_baseline.json"
DEFAULT_CURRENT = HERE / "results" / "perf_current.json"


def load_rates(path: pathlib.Path) -> dict:
    """``label -> refs_per_sec`` from a perf-smoke payload."""
    payload = json.loads(path.read_text())
    rates = {}
    for run in payload.get("runs", []):
        label = run.get("label")
        rate = run.get("refs_per_sec")
        if label is None or not isinstance(rate, (int, float)) or rate <= 0:
            raise ValueError(f"malformed run entry in {path}: {run!r}")
        rates[label] = float(rate)
    if not rates:
        raise ValueError(f"no runs in {path}")
    return rates


def check(baseline: dict, current: dict, tolerance: float) -> list:
    """Return a list of failure messages (empty = gate passes)."""
    failures = []
    for label, base_rate in sorted(baseline.items()):
        rate = current.get(label)
        if rate is None:
            failures.append(f"{label}: missing from the current run")
            continue
        ratio = rate / base_rate
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(
            f"  {label:<20} baseline {base_rate:>12,.1f}  "
            f"current {rate:>12,.1f}  ({ratio:.2f}x)  {status}"
        )
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{label}: {rate:,.1f} refs/sec is {1.0 - ratio:.0%} below "
                f"baseline {base_rate:,.1f} (tolerance {tolerance:.0%})"
            )
    for label in sorted(set(current) - set(baseline)):
        print(f"  {label:<20} new label (no baseline), informational only")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
                        help="baseline payload (default: the pre-run snapshot "
                             "of BENCH_perf.json)")
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT,
                        help="fresh payload written by the perf smoke")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.25")),
        help="allowed relative refs/sec drop before failing (default 0.25; "
             "env REPRO_PERF_TOLERANCE)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="LABEL",
        help="fail unless this label exists in the current run "
             "(repeatable)")
    args = parser.parse_args(argv)
    if not (0.0 <= args.tolerance < 1.0):
        parser.error("tolerance must be in [0, 1)")

    for path, hint in ((args.baseline, "snapshotted baseline"),
                       (args.current, "fresh measurement")):
        if not path.is_file():
            print(
                f"perf gate: {hint} {path} not found — run "
                "`python -m pytest benchmarks/test_perf_smoke.py` first",
                file=sys.stderr,
            )
            return 1
    try:
        baseline = load_rates(args.baseline)
        current = load_rates(args.current)
    except ValueError as exc:
        print(f"perf gate: {exc}", file=sys.stderr)
        return 1

    print(f"perf gate: tolerance {args.tolerance:.0%}")
    failures = check(baseline, current, args.tolerance)
    for label in args.require:
        if label not in current:
            failures.append(f"{label}: required label missing from the "
                            "current run")
    if failures:
        for failure in failures:
            print(f"perf gate FAILED: {failure}", file=sys.stderr)
        return 1
    print("perf gate: all labels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
