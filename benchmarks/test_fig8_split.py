"""Figure 8: off-chip increase split into application vs PV data (PV-8)."""

from repro.analysis.figures import figure8
from repro.analysis.report import render_figure


def test_figure8_app_vs_pv_split(record_figure):
    fig = record_figure("figure8", figure8, render_figure)

    for row in fig.rows:
        # Paper: PV does not pollute — application-data misses increase by
        # less than ~2.5% everywhere.
        assert row["miss_app"] < 0.08
        # PV's own off-chip reads are a small fraction of baseline traffic
        # (the L2 keeps the table hot).
        assert row["miss_pv"] < 0.10

    average_app = sum(r["miss_app"] for r in fig.rows) / len(fig.rows)
    assert average_app < 0.04  # paper: overall average ~1%
