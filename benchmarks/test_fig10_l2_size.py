"""Figure 10: PV's off-chip interference vs. L2 capacity (Section 4.5)."""

from repro.analysis.figures import figure10
from repro.analysis.report import render_figure


def test_figure10_l2_size_sensitivity(record_figure):
    fig = record_figure("figure10", figure10, render_figure)

    workloads = sorted({r["workload"] for r in fig.rows})
    small = [fig.value("total", workload=w, l2="2MB") for w in workloads]
    large = [fig.value("total", workload=w, l2="8MB") for w in workloads]

    avg_small = sum(small) / len(small)
    avg_large = sum(large) / len(large)

    # Paper: PV interferes less as the L2 grows; minimal at 8MB.
    assert avg_large < avg_small
    assert avg_large < 0.10
