"""Setuptools shim for environments without the ``wheel`` package.

This file exists so ``pip install -e . --no-build-isolation
--no-use-pep517`` (the offline path) works with older setuptools.  The
dependency story is deliberately small: numpy is the only hard runtime
dependency (trace generation and the vectorized batch functional path),
and numba is an *optional* extra — ``pip install .[compiled]`` — that
accelerates the batch kernel's verdict pass when ``REPRO_COMPILED=1``;
without it the kernel silently uses its numpy implementation.
"""

from setuptools import setup

setup(
    install_requires=["numpy"],
    extras_require={"compiled": ["numba"]},
)
