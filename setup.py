"""Setuptools shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-build-isolation --no-use-pep517`` (the offline
path) works with older setuptools.
"""

from setuptools import setup

setup()
